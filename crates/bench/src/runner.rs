//! Shared experiment plumbing: instruction budgets, spec-keyed frozen
//! traces, fault-isolated parallel simulation fan-out, resumable
//! grids, and markdown rendering.
//!
//! Every experiment path acquires instructions the same way now: a
//! [`WorkloadSpec`] is frozen **once** into an immutable
//! [`PackedTrace`] (via [`crate::trace_store::freeze`], which also
//! serves `--record-traces`/`--traces`), and every configuration row,
//! thread, and repeat replays the shared `Arc` zero-copy. A
//! C-config × A-spec grid therefore pays A generation passes instead
//! of C × A — the generation cost that used to dominate figure wall
//! time after the simulators got fast. Replay is bit-identical to
//! generation (same stream, same name-derived seeds), pinned by
//! `frozen_grid_matches_generator_backed_runs` below.
//!
//! **Fault isolation.** Grid cells run on the detached-thread
//! executor [`run_cells`]: each cell is wrapped in `catch_unwind`, so
//! one panicking cell becomes one [`CellError`] instead of tearing
//! down the whole sweep, and a soft watchdog (`ACIC_CELL_TIMEOUT_SECS`)
//! marks cells that exceed the budget failed without killing the
//! process. [`Runner::try_run_grid`] surfaces the per-cell outcomes
//! as a structured [`GridError`]; [`Runner::run_grid`] keeps the
//! infallible signature for figure code and panics with that
//! structured report (which the `experiments` keep-going loop then
//! catches per figure).
//!
//! **Resume.** When a [`crate::result_store::ResultStore`] is
//! attached (`experiments --results <dir>`, or [`Runner::store`]
//! directly), every finished cell is journaled as soon as it
//! completes and an interrupted sweep replays finished cells from
//! disk, simulating only the rest.

use crate::result_store::{cell_key, windowed_cell_key, ResultStore};
use acic_sim::{
    Engine, IcacheOrg, PrefetcherKind, SampleSchedule, SimConfig, SimReport, Simulator,
};
use acic_trace::PackedTrace;
use acic_workloads::AppProfile;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Once};
use std::time::{Duration, Instant};

pub use acic_workloads::{short_name, split_budget, WorkloadSpec};

static BUDGET_WARNING: Once = Once::new();
static THREADS_WARNING: Once = Once::new();
static TIMEOUT_WARNING: Once = Once::new();
static WINDOW_THREADS_WARNING: Once = Once::new();
static OVERSUBSCRIPTION_WARNING: Once = Once::new();

fn warn_ignored(once: &'static Once, var: &str, raw: &str) {
    once.call_once(|| {
        eprintln!("[warning: {var}={raw:?} is not a valid value; override ignored]");
    });
}

/// Instructions simulated per application: `ACIC_EXP_INSTRUCTIONS` or
/// 1 M (the paper runs 500 M–1 B; shapes stabilize well below that).
/// An unparseable override warns once on stderr and falls back.
pub fn instruction_budget() -> u64 {
    match std::env::var("ACIC_EXP_INSTRUCTIONS") {
        Ok(raw) => raw.parse().unwrap_or_else(|_| {
            warn_ignored(&BUDGET_WARNING, "ACIC_EXP_INSTRUCTIONS", &raw);
            1_000_000
        }),
        Err(_) => 1_000_000,
    }
}

/// Resolves the grid worker count from an `ACIC_BENCH_THREADS`-style
/// override and the machine's available parallelism: a parseable
/// positive override wins (clamped to ≥ 1 by construction — zero and
/// garbage fall back), otherwise `available`. Pure so the policy is
/// testable without touching the process environment.
pub fn bench_threads_from(var: Option<&str>, available: usize) -> usize {
    var.and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(available)
        .max(1)
}

/// Grid worker count: `ACIC_BENCH_THREADS` (clamped to ≥ 1) or the
/// machine's available parallelism. An override that parses to
/// nothing usable warns once on stderr and is ignored.
pub fn bench_threads() -> usize {
    let raw = std::env::var("ACIC_BENCH_THREADS").ok();
    if let Some(r) = raw.as_deref() {
        if r.parse::<usize>().ok().filter(|&n| n >= 1).is_none() {
            warn_ignored(&THREADS_WARNING, "ACIC_BENCH_THREADS", r);
        }
    }
    bench_threads_from(
        raw.as_deref(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2),
    )
}

/// Resolves the window-parallel worker count from an
/// `ACIC_WINDOW_THREADS`-style override: a parseable positive value
/// enables windowed execution with that many workers per cell, `0`
/// (or unset, or garbage) keeps the serial engine. Pure for
/// testability.
pub fn window_threads_from(var: Option<&str>) -> usize {
    var.and_then(|v| v.parse::<usize>().ok()).unwrap_or(0)
}

/// Window-parallel workers per grid cell: `ACIC_WINDOW_THREADS`
/// (also set by `experiments --window-threads <n>`), `0` or unset
/// meaning off (cells run the serial engine). An unparseable value
/// warns once on stderr and is ignored.
pub fn window_threads() -> usize {
    let raw = std::env::var("ACIC_WINDOW_THREADS").ok();
    if let Some(r) = raw.as_deref() {
        if r.parse::<usize>().is_err() {
            warn_ignored(&WINDOW_THREADS_WARNING, "ACIC_WINDOW_THREADS", r);
        }
    }
    window_threads_from(raw.as_deref())
}

/// Composes the grid worker count and the per-cell window worker
/// count out of **one** thread budget (`ACIC_BENCH_THREADS` /
/// available parallelism), so grid × window parallelism never
/// oversubscribes the machine: with windowed execution off
/// (`window_threads <= 1` adds no concurrency per cell) the whole
/// budget goes to grid cells; otherwise each cell spends
/// `window_threads` threads, so only `budget / window_threads` cells
/// run at once (at least one). Returns `(grid_workers,
/// oversubscribed)`, the flag set when a single cell alone exceeds
/// the budget — the one composition that cannot be satisfied without
/// oversubscribing. Pure for testability.
pub fn split_thread_budget(budget: usize, window_threads: usize) -> (usize, bool) {
    if window_threads <= 1 {
        (budget.max(1), false)
    } else {
        ((budget / window_threads).max(1), window_threads > budget)
    }
}

/// Resolves the per-cell soft watchdog from an
/// `ACIC_CELL_TIMEOUT_SECS`-style value: a positive integer arms the
/// watchdog, `0` (or unset) disables it. Pure for testability.
pub fn cell_timeout_from(var: Option<&str>) -> Option<Duration> {
    var.and_then(|v| v.parse::<u64>().ok())
        .filter(|&s| s > 0)
        .map(Duration::from_secs)
}

/// Per-cell soft watchdog: `ACIC_CELL_TIMEOUT_SECS` seconds, disabled
/// when unset or `0`. An unparseable value warns once and is ignored.
pub fn cell_timeout() -> Option<Duration> {
    let raw = std::env::var("ACIC_CELL_TIMEOUT_SECS").ok();
    if let Some(r) = raw.as_deref() {
        if r.parse::<u64>().is_err() {
            warn_ignored(&TIMEOUT_WARNING, "ACIC_CELL_TIMEOUT_SECS", r);
        }
    }
    cell_timeout_from(raw.as_deref())
}

/// Why one grid cell failed while the rest of the sweep went on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CellError {
    /// The cell's simulation panicked; the payload message.
    Panicked(String),
    /// The cell exceeded the soft watchdog budget.
    TimedOut(Duration),
    /// The cell never ran: every worker was wedged in a timed-out
    /// cell (or the worker pool died), so no thread was left to pick
    /// it up.
    Starved,
    /// The cell's workload could not be frozen (trace-store write
    /// failure or a panic during materialization).
    Freeze(String),
    /// The worker thread claiming the cell died without reporting
    /// (its panic payload unwound through `catch_unwind`); the cell
    /// was requeued once and its worker died again.
    WorkerLost,
    /// Under `--supervise`: every attempt of the cell's child process
    /// failed; the final attempt's exit evidence and the attempt
    /// count (full history in the crash report).
    ChildFailed {
        /// The last attempt's [`crate::supervise::policy::ChildOutcome`],
        /// rendered.
        outcome: String,
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Panicked(msg) => write!(f, "panicked: {msg}"),
            CellError::TimedOut(limit) => {
                write!(f, "exceeded the {}s cell watchdog", limit.as_secs())
            }
            CellError::Starved => write!(f, "starved: no live worker left to run it"),
            CellError::Freeze(msg) => write!(f, "workload freeze failed: {msg}"),
            CellError::WorkerLost => {
                write!(f, "its worker thread died twice without reporting")
            }
            CellError::ChildFailed { outcome, attempts } => {
                write!(f, "child failed after {attempts} attempt(s): {outcome}")
            }
        }
    }
}

impl std::error::Error for CellError {}

/// One failed cell inside a [`GridError`], located by its labels.
#[derive(Clone, Debug)]
pub struct CellFailure {
    /// Config row index and the organization's display label.
    pub config: String,
    /// The workload spec's display label.
    pub spec: String,
    /// What went wrong.
    pub error: CellError,
}

/// The structured end-of-grid failure report: every cell that failed,
/// plus how much of the sweep still completed. `Display` renders the
/// human-readable summary the `experiments` binary prints, grouping
/// identical errors (an 870-cell sweep where one config panics
/// everywhere prints one group with exemplars, not 870 lines).
#[derive(Debug)]
pub struct GridError {
    /// Cells that produced a report.
    pub completed: usize,
    /// Total cells in the grid.
    pub total: usize,
    /// Every failed cell with its location and cause.
    pub failures: Vec<CellFailure>,
    /// Where per-cell crash reports were written, when the grid ran
    /// under `--supervise`.
    pub crash_dir: Option<std::path::PathBuf>,
}

/// How many failed-cell exemplars a [`GridError`] summary prints per
/// distinct error before eliding the rest.
const FAILURE_EXEMPLARS: usize = 10;

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "grid failed: {} of {} cells completed, {} failed",
            self.completed,
            self.total,
            self.failures.len()
        )?;
        // Group identical errors, preserving first-seen order.
        let mut order: Vec<String> = Vec::new();
        let mut groups: std::collections::HashMap<String, Vec<&CellFailure>> =
            std::collections::HashMap::new();
        for fail in &self.failures {
            let rendered = fail.error.to_string();
            if !groups.contains_key(&rendered) {
                order.push(rendered.clone());
            }
            groups.entry(rendered).or_default().push(fail);
        }
        for rendered in &order {
            let group = &groups[rendered];
            if group.len() == 1 {
                let fail = group[0];
                writeln!(f, "  [{} x {}]: {}", fail.config, fail.spec, rendered)?;
            } else {
                writeln!(
                    f,
                    "  {} cells failed identically: {}",
                    group.len(),
                    rendered
                )?;
                for fail in group.iter().take(FAILURE_EXEMPLARS) {
                    writeln!(f, "    [{} x {}]", fail.config, fail.spec)?;
                }
                if group.len() > FAILURE_EXEMPLARS {
                    writeln!(
                        f,
                        "    ... and {} more cells with this error",
                        group.len() - FAILURE_EXEMPLARS
                    )?;
                }
            }
        }
        if let Some(dir) = &self.crash_dir {
            writeln!(f, "  crash reports: {}", dir.display())?;
        }
        Ok(())
    }
}

impl std::error::Error for GridError {}

/// A successful grid sweep plus its provenance counters.
pub struct GridRun {
    /// Reports in `configs x specs` order.
    pub grid: Vec<Vec<SimReport>>,
    /// Cells served from the attached result store.
    pub replayed: u64,
    /// Cells actually simulated this run.
    pub computed: u64,
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    p.downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Work-stealing parallel map over `0..work`: an atomic cursor hands
/// out indices so long items (OPT cells, oracle pre-passes) don't
/// serialize behind static chunking. Results come back in index
/// order; `f` runs on worker threads. Panics in `f` propagate —
/// fault-isolated execution is [`run_cells`].
fn fan_out<T: Send>(work: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if work == 0 {
        return Vec::new();
    }
    let threads = bench_threads().min(work);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let next_ref = &next;
    let f_ref = &f;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= work {
                    break;
                }
                tx.send((i, f_ref(i))).expect("collector outlives workers");
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<T>> = (0..work).map(|_| None).collect();
    for (i, v) in rx {
        out[i] = Some(v);
    }
    out.into_iter()
        .map(|v| v.expect("all work completed"))
        .collect()
}

enum Msg<T> {
    Started(usize, Instant),
    Finished(usize, Result<T, String>),
    /// A worker thread terminated: `Some(i)` with a claimed cell it
    /// never finished (the thread died mid-cell), `None` after a
    /// normal retirement.
    Died(Option<usize>),
}

enum St<T> {
    Pending,
    Running(Instant),
    Done(Result<T, CellError>),
}

/// Sends [`Msg::Died`] when the owning worker thread terminates for
/// *any* reason — normal retirement (no claimed cell) or an unwind
/// that escapes `catch_unwind` (a panic payload whose `Drop` panics).
/// The claimed cell is set on claim and cleared once its `Finished`
/// message is on the wire, so a silent worker death always surfaces
/// as `Died(Some(cell))`.
struct DeathWatch<T> {
    tx: mpsc::Sender<Msg<T>>,
    cell: Option<usize>,
}

impl<T> Drop for DeathWatch<T> {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Died(self.cell.take()));
    }
}

fn spawn_worker<T, F>(
    first: Option<usize>,
    work: usize,
    cursor: &Arc<AtomicUsize>,
    f: &Arc<F>,
    tx: &mpsc::Sender<Msg<T>>,
) where
    T: Send + 'static,
    F: Fn(usize) -> T + Send + Sync + 'static,
{
    let cursor = Arc::clone(cursor);
    let f = Arc::clone(f);
    let tx = tx.clone();
    std::thread::spawn(move || {
        let mut watch = DeathWatch { tx, cell: None };
        let mut next = first;
        loop {
            let i = match next.take() {
                Some(i) => i,
                None => cursor.fetch_add(1, Ordering::Relaxed),
            };
            if i >= work {
                break;
            }
            watch.cell = Some(i);
            if watch.tx.send(Msg::Started(i, Instant::now())).is_err() {
                watch.cell = None;
                break; // collector gone (grid already resolved)
            }
            let res = catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|p| panic_message(&*p));
            if watch.tx.send(Msg::Finished(i, res)).is_err() {
                watch.cell = None;
                break;
            }
            watch.cell = None;
        }
    });
}

/// Fault-isolated parallel map over `0..work` on **detached** worker
/// threads: each cell runs under `catch_unwind` (a panic fails that
/// cell alone), and with `timeout` armed a soft watchdog marks cells
/// that exceed it [`CellError::TimedOut`] without killing the worker
/// — the thread is presumed wedged, and if *every* worker wedges, the
/// not-yet-started cells resolve as [`CellError::Starved`] instead of
/// hanging the process. A wedged worker that eventually finishes has
/// its late result discarded (the cell already failed loudly) and
/// goes back to stealing work.
///
/// A worker thread that *dies* (an unwind `catch_unwind` cannot
/// contain) no longer starves the queue: the cell it had claimed is
/// requeued once onto a replacement worker, and only a second death
/// of the same cell fails it ([`CellError::WorkerLost`]). When the
/// last live worker dies, everything unresolved fails
/// [`CellError::Starved`] instead of hanging.
///
/// Detached threads (not `thread::scope`) are the point: a scope
/// join would block on a hung worker forever, which is exactly the
/// dead-process failure mode this executor exists to remove.
pub fn run_cells<T: Send + 'static>(
    work: usize,
    threads: usize,
    timeout: Option<Duration>,
    f: impl Fn(usize) -> T + Send + Sync + 'static,
) -> Vec<Result<T, CellError>> {
    if work == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, work);
    let f = Arc::new(f);
    let cursor = Arc::new(AtomicUsize::new(0));
    let (tx, rx) = mpsc::channel::<Msg<T>>();
    for _ in 0..threads {
        spawn_worker(None, work, &cursor, &f, &tx);
    }
    // Kept only to arm replacement workers; liveness is tracked
    // through `Died` messages, not channel disconnection.
    let worker_tx = tx.clone();
    drop(tx);

    let mut states: Vec<St<T>> = (0..work).map(|_| St::Pending).collect();
    let mut resolved = 0usize;
    let mut live = threads;
    // Cells the watchdog failed whose worker hasn't reported back:
    // each one pins a presumed-wedged worker thread.
    let mut wedged: std::collections::HashSet<usize> = std::collections::HashSet::new();
    // Cells already requeued once after a worker death.
    let mut requeued: std::collections::HashSet<usize> = std::collections::HashSet::new();
    while resolved < work {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(Msg::Started(i, at)) => {
                if !matches!(states[i], St::Done(_)) {
                    states[i] = St::Running(at);
                }
            }
            Ok(Msg::Finished(i, res)) => {
                if wedged.remove(&i) {
                    continue; // late result: the watchdog already failed this cell
                }
                if matches!(states[i], St::Done(_)) {
                    continue;
                }
                states[i] = St::Done(res.map_err(CellError::Panicked));
                resolved += 1;
            }
            Ok(Msg::Died(cell)) => {
                live = live.saturating_sub(1);
                if let Some(i) = cell {
                    wedged.remove(&i);
                    if !matches!(states[i], St::Done(_)) {
                        if requeued.insert(i) {
                            // First death: hand the orphaned cell to a
                            // fresh worker, which then goes back to
                            // stealing.
                            states[i] = St::Pending;
                            spawn_worker(Some(i), work, &cursor, &f, &worker_tx);
                            live += 1;
                        } else {
                            states[i] = St::Done(Err(CellError::WorkerLost));
                            resolved += 1;
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Unreachable while `worker_tx` is held; kept as a
                // defensive backstop.
                live = 0;
            }
        }
        if let Some(limit) = timeout {
            for (i, s) in states.iter_mut().enumerate() {
                if matches!(s, St::Running(at) if at.elapsed() > limit) {
                    *s = St::Done(Err(CellError::TimedOut(limit)));
                    resolved += 1;
                    wedged.insert(i);
                }
            }
            if wedged.len() >= live {
                // Every live worker is stuck inside a timed-out cell;
                // the queue will never drain.
                for s in states.iter_mut() {
                    if matches!(s, St::Pending) {
                        *s = St::Done(Err(CellError::Starved));
                        resolved += 1;
                    }
                }
            }
        }
        if live == 0 {
            // Every worker's messages precede its `Died` in the
            // channel, so nothing unresolved can still arrive.
            for s in states.iter_mut() {
                if !matches!(s, St::Done(_)) {
                    *s = St::Done(Err(CellError::Starved));
                    resolved += 1;
                }
            }
        }
    }
    states
        .into_iter()
        .map(|s| match s {
            St::Done(r) => r,
            _ => Err(CellError::Starved),
        })
        .collect()
}

/// Freezes every spec in `specs` exactly once (structurally equal
/// specs share one frozen trace) and returns the per-spec outcomes,
/// in input order — a freeze failure (store write error or a panic
/// during materialization) fails only the cells that need that spec.
/// Freezing fans out across the bench worker pool.
pub fn try_freeze_specs(
    specs: &[WorkloadSpec],
    instructions: u64,
) -> Vec<Result<Arc<PackedTrace>, String>> {
    // Dedup by structural equality: map every spec to the ordinal of
    // its first occurrence.
    let mut unique: Vec<usize> = Vec::new();
    let mut to_unique: Vec<usize> = Vec::with_capacity(specs.len());
    for (i, s) in specs.iter().enumerate() {
        match specs[..i].iter().position(|t| t == s) {
            Some(j) => to_unique.push(to_unique[j]),
            None => {
                to_unique.push(unique.len());
                unique.push(i);
            }
        }
    }
    let frozen = fan_out(unique.len(), |u| {
        let spec = &specs[unique[u]];
        match catch_unwind(AssertUnwindSafe(|| {
            crate::trace_store::freeze(spec, instructions)
        })) {
            Ok(Ok(t)) => Ok(t),
            Ok(Err(e)) => Err(e.to_string()),
            Err(p) => Err(panic_message(&*p)),
        }
    });
    to_unique.into_iter().map(|u| frozen[u].clone()).collect()
}

/// [`try_freeze_specs`] for callers without a per-cell failure path;
/// panics on the first freeze failure.
pub fn freeze_specs(specs: &[WorkloadSpec], instructions: u64) -> Vec<Arc<PackedTrace>> {
    try_freeze_specs(specs, instructions)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("workload freeze failed: {e}")))
        .collect()
}

fn must_freeze(spec: &WorkloadSpec, instructions: u64) -> Arc<PackedTrace> {
    crate::trace_store::freeze(spec, instructions).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs one spec under `cfg` by replaying its frozen trace.
pub fn run_spec(cfg: &SimConfig, spec: &WorkloadSpec, instructions: u64) -> SimReport {
    let trace = must_freeze(spec, instructions);
    Simulator::run(cfg, trace.as_ref())
}

/// Runs one spec under `cfg` straight off the generator — the
/// pre-freeze path, kept (a) as the reference the bit-identity tests
/// pin packed replay against and (b) as the regeneration leg the perf
/// harness measures the frozen grid's win over.
pub fn run_spec_generated(cfg: &SimConfig, spec: &WorkloadSpec, instructions: u64) -> SimReport {
    Simulator::run(cfg, &spec.generator(instructions))
}

/// Runs one (configuration, application) pair over the app's frozen
/// trace.
pub fn run_config(cfg: &SimConfig, profile: &AppProfile, instructions: u64) -> SimReport {
    run_spec(cfg, &WorkloadSpec::Single(profile.clone()), instructions)
}

/// Runs a candidate configuration and the matching baseline on the
/// same frozen workload (one freeze, two replays); returns
/// `(candidate, baseline)`.
pub fn run_pair(
    cfg: &SimConfig,
    baseline: &SimConfig,
    profile: &AppProfile,
    instructions: u64,
) -> (SimReport, SimReport) {
    let trace = must_freeze(&WorkloadSpec::Single(profile.clone()), instructions);
    (
        Simulator::run(cfg, trace.as_ref()),
        Simulator::run(baseline, trace.as_ref()),
    )
}

/// The `--profile-cell` target: a substring matched against cell
/// labels (`config <c> '<org>' x spec '<spec>'`). Set once by the
/// `experiments` binary before any figure runs.
static PROFILE_CELL: std::sync::OnceLock<String> = std::sync::OnceLock::new();

/// Arms `--profile-cell` mode: the first grid cell whose label
/// contains `cell` runs in a tight measurement loop and the process
/// exits, instead of sweeping the grid. See [`Runner::try_run_grid`].
pub fn set_profile_cell(cell: String) {
    let _ = PROFILE_CELL.set(cell);
}

/// Iterations of the `--profile-cell` tight loop:
/// `ACIC_PROFILE_ITERS` or 50 — long enough for a sampling profiler
/// to see a stable hot-path histogram.
fn profile_iters() -> u64 {
    std::env::var("ACIC_PROFILE_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(50)
}

/// The `--profile-cell` tight loop: freezes the target cell's spec
/// once, then re-simulates the identical cell `ACIC_PROFILE_ITERS`
/// times with minimal stderr chatter (one line before, one line of
/// stats after) so `perf record -p <pid>` sees almost nothing but the
/// simulator's hot path. Exits the process when done.
fn run_profile_cell(
    cfg: &SimConfig,
    spec: &WorkloadSpec,
    instructions: u64,
    window_threads: usize,
    label: &str,
) -> ! {
    let iters = profile_iters();
    let trace = must_freeze(spec, instructions);
    eprintln!(
        "[profile-cell: {label}; {iters} x {instructions} instructions, pid {}]",
        std::process::id()
    );
    let start = Instant::now();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        let report = if window_threads >= 1 {
            Engine::run_windowed(cfg, trace.as_ref(), window_threads)
        } else {
            Simulator::run(cfg, trace.as_ref())
        };
        std::hint::black_box(&report);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let total = start.elapsed().as_secs_f64();
    let n = instructions as f64;
    eprintln!(
        "[profile-cell: {iters} iterations in {total:.2}s; best {:.0} ips, mean {:.0} ips]",
        n / best.max(1e-12),
        n * iters as f64 / total.max(1e-12)
    );
    std::process::exit(0);
}

/// Deliberate failure injection for crash-safety tests: the CLI and
/// integration tests pin a single cell to panic, abort, stall, be
/// SIGKILLed, or exit with a bad status via the `ACIC_*_CELL` knobs
/// (`"<config>:<spec>"`, with an optional parameter suffix;
/// scripting and attempt-gating live in
/// [`crate::fault::scripted_cell_fault`]). No-ops unless a matching
/// variable is set.
pub(crate) fn injected_cell_failure(c: usize, a: usize) {
    use crate::fault::CellFault;
    match crate::fault::scripted_cell_fault(c, a) {
        None => {}
        Some(CellFault::Panic) => panic!("injected test panic in cell ({c},{a})"),
        Some(CellFault::Abort) => {
            eprintln!("[injected abort in cell ({c},{a})]");
            std::process::abort();
        }
        Some(CellFault::Stall(delay)) => std::thread::sleep(delay),
        Some(CellFault::Kill) => {
            eprintln!("[injected kill in cell ({c},{a})]");
            crate::supervise::kill_self();
        }
        Some(CellFault::Exit(code)) => {
            eprintln!("[injected exit {code} in cell ({c},{a})]");
            std::process::exit(code);
        }
    }
}

/// A parallel fan-out over (organization x application) grids.
pub struct Runner {
    /// Simulation length per application.
    pub instructions: u64,
    /// Baseline configuration (LRU + the chosen prefetcher).
    pub baseline: SimConfig,
    /// Resumable cell store; finished cells are journaled as they
    /// complete and replayed on the next run. Constructors default to
    /// the `--results` global ([`crate::result_store::active`]).
    pub store: Option<Arc<ResultStore>>,
    /// Soft per-cell watchdog; constructors default to
    /// `ACIC_CELL_TIMEOUT_SECS` ([`cell_timeout`]).
    pub cell_timeout: Option<Duration>,
    /// Window-parallel workers per cell: `0` runs the serial engine
    /// ([`Simulator::run`]), `>= 1` fans each sampled cell's detailed
    /// windows across this many workers
    /// ([`Engine::run_windowed`]). Constructors default to
    /// `ACIC_WINDOW_THREADS` ([`window_threads`]); grid parallelism
    /// is divided down so grid × window threads stay within the one
    /// [`bench_threads`] budget ([`split_thread_budget`]).
    pub window_threads: usize,
    /// Process supervisor: when set, every to-be-computed cell runs
    /// in its own `--run-cell` child process with hard timeouts,
    /// retry-with-backoff, and crash reports
    /// ([`crate::supervise::run_one`]). Constructors default to the
    /// `--supervise` global ([`crate::supervise::active`]); `None`
    /// keeps the in-process path, which stays the bit-identity
    /// reference.
    pub supervise: Option<Arc<crate::supervise::SuperviseCtx>>,
}

impl Runner {
    /// Creates a runner with the standard LRU+FDP baseline.
    pub fn new() -> Self {
        Runner {
            instructions: instruction_budget(),
            baseline: SimConfig::default(),
            store: crate::result_store::active(),
            cell_timeout: cell_timeout(),
            window_threads: window_threads(),
            supervise: crate::supervise::active(),
        }
    }

    /// Creates a runner over a different prefetcher baseline
    /// (Figures 20/21 use the entangling prefetcher).
    pub fn with_prefetcher(prefetcher: PrefetcherKind) -> Self {
        Runner {
            baseline: SimConfig::default().with_prefetcher(prefetcher),
            ..Runner::new()
        }
    }

    /// Creates a runner whose baseline (and therefore every config
    /// derived from it through [`Runner::run_orgs`]) simulates under
    /// the given fidelity schedule.
    pub fn with_schedule(schedule: SampleSchedule) -> Self {
        Runner {
            baseline: SimConfig::default().with_schedule(schedule),
            ..Runner::new()
        }
    }

    /// Runs every (config, workload spec) pair in parallel, returning
    /// results in `configs x specs` order.
    ///
    /// Scheduling is spec-keyed: each distinct spec is frozen into a
    /// [`PackedTrace`] exactly once (in parallel), then the
    /// config × spec cells replay the shared `Arc`s under
    /// work-stealing (an atomic cursor over the cell list) so long
    /// cells (OPT, oracle pre-passes) don't serialize behind static
    /// chunking. Thread count follows available parallelism,
    /// overridable via `ACIC_BENCH_THREADS` (clamped to ≥ 1 — handy
    /// for pinning CI or sharing a box). Results are identical to a
    /// serial generator-backed loop regardless of thread
    /// interleaving: packed replay is bit-identical to generation,
    /// each cell's workload seed derives only from its spec (profiles
    /// and quantum), and the simulator's internal seeds derive only
    /// from the workload name — never from cell order, thread
    /// identity, or wall-clock time (asserted by
    /// `frozen_grid_matches_generator_backed_runs`).
    ///
    /// # Panics
    ///
    /// Panics with the structured [`GridError`] report when any cell
    /// fails; callers with a failure path use [`Runner::try_run_grid`].
    pub fn run_grid(&self, configs: &[SimConfig], specs: &[WorkloadSpec]) -> Vec<Vec<SimReport>> {
        match self.try_run_grid(configs, specs) {
            Ok(run) => run.grid,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Runner::run_grid`] with per-cell fault isolation surfaced:
    /// every cell runs under `catch_unwind` on the [`run_cells`]
    /// executor, a failing cell becomes one entry in the returned
    /// [`GridError`] while every other cell still completes (and is
    /// journaled when a store is attached), and the soft watchdog
    /// fails wedged cells instead of hanging the sweep.
    ///
    /// # Errors
    ///
    /// Returns the structured failure report when at least one cell
    /// failed; completed cells are still journaled to the store, so a
    /// rerun resumes rather than restarts.
    pub fn try_run_grid(
        &self,
        configs: &[SimConfig],
        specs: &[WorkloadSpec],
    ) -> Result<GridRun, GridError> {
        let (n_cfg, n_spec) = (configs.len(), specs.len());
        let n = n_cfg * n_spec;
        if n == 0 {
            return Ok(GridRun {
                grid: vec![Vec::new(); n_cfg],
                replayed: 0,
                computed: 0,
            });
        }
        let label_of = |c: usize, a: usize| {
            format!(
                "config {c} '{}' x spec '{}'",
                configs[c].icache_org.label(),
                specs[a].label()
            )
        };
        // `--profile-cell` mode: the first cell whose label contains
        // the target substring is re-simulated in a tight loop and
        // the process exits (inside `run_profile_cell`). Grids of the
        // selected figure that don't hold a match fall through and
        // run normally, so a later grid in the same figure is still
        // reachable.
        if let Some(target) = PROFILE_CELL.get() {
            if let Some(i) = (0..n).find(|&i| label_of(i / n_spec, i % n_spec).contains(target)) {
                let (c, a) = (i / n_spec, i % n_spec);
                run_profile_cell(
                    &configs[c],
                    &specs[a],
                    self.instructions,
                    self.window_threads,
                    &label_of(c, a),
                );
            }
        }
        let key_of = |spec: &WorkloadSpec, cfg: &SimConfig| {
            if self.window_threads >= 1 {
                windowed_cell_key(spec, self.instructions, cfg)
            } else {
                cell_key(spec, self.instructions, cfg)
            }
        };
        // Supervised child mode: when this process is a `--run-cell`
        // child and its one target cell lives in this grid, freeze
        // only that cell's spec, run it, journal it into the private
        // attempt store, and exit. Grids that don't contain the
        // target recompute in-process below (replaying store hits,
        // with journal writes and scripted faults suppressed) so a
        // later grid in the same figure still reaches the target.
        let child = crate::supervise::child_target();
        if let Some(target) = child {
            let hit =
                (0..n).find(|&i| key_of(&specs[i % n_spec], &configs[i / n_spec]) == target.key);
            if let Some(i) = hit {
                let (c, a) = (i / n_spec, i % n_spec);
                let window_threads = self.window_threads;
                let cfg = configs[c].clone();
                let spec = specs[a].clone();
                let instructions = self.instructions;
                crate::supervise::run_child_cell(target, None, move || {
                    let trace = must_freeze(&spec, instructions);
                    injected_cell_failure(c, a);
                    if window_threads >= 1 {
                        Engine::run_windowed(&cfg, trace.as_ref(), window_threads)
                    } else {
                        Simulator::run(&cfg, trace.as_ref())
                    }
                });
            }
        }
        let supervisor = if child.is_some() {
            None
        } else {
            self.supervise.clone()
        };
        let crash_dir = supervisor.as_ref().map(|ctx| ctx.crash_dir.clone());
        let frozen = try_freeze_specs(specs, self.instructions);
        let mut slots: Vec<Option<Result<SimReport, CellError>>> = (0..n).map(|_| None).collect();
        let keys: Vec<String> = if self.store.is_some() || supervisor.is_some() {
            (0..n)
                .map(|i| key_of(&specs[i % n_spec], &configs[i / n_spec]))
                .collect()
        } else {
            Vec::new()
        };
        let mut replayed = 0u64;
        if let Some(store) = &self.store {
            for (i, slot) in slots.iter_mut().enumerate() {
                if let Some(report) = store.get(&keys[i]) {
                    *slot = Some(Ok(report));
                    replayed += 1;
                }
            }
        }
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.is_none() {
                if let Err(e) = &frozen[i % n_spec] {
                    *slot = Some(Err(CellError::Freeze(e.clone())));
                }
            }
        }
        let todo: Vec<usize> = (0..n).filter(|&i| slots[i].is_none()).collect();
        let computed = todo.len() as u64;
        if !todo.is_empty() {
            let budget = bench_threads();
            let (grid_workers, oversubscribed) = split_thread_budget(budget, self.window_threads);
            if oversubscribed {
                let wt = self.window_threads;
                OVERSUBSCRIPTION_WARNING.call_once(|| {
                    eprintln!(
                        "[warning: window-threads {wt} exceeds the thread budget {budget}; \
                         a single cell already oversubscribes the machine]"
                    );
                });
            }
            let todo_arc = Arc::new(todo.clone());
            let keys_arc = Arc::new(keys);
            if let Some(ctx) = supervisor {
                // Supervised: one child process per cell, hard
                // timeouts and retries inside `run_one`; the parent
                // only journals what the child reported, so the
                // journal stays byte-identical to the in-process
                // path.
                let labels: Arc<Vec<String>> =
                    Arc::new((0..n).map(|i| label_of(i / n_spec, i % n_spec)).collect());
                let store = self.store.clone();
                let timeout = self.cell_timeout;
                let results = run_cells(
                    todo.len(),
                    grid_workers.min(todo.len()),
                    None, // the hard per-child deadline replaces the soft watchdog
                    move |t| {
                        let i = todo_arc[t];
                        let report =
                            crate::supervise::run_one(&ctx, &keys_arc[i], &labels[i], timeout)?;
                        if let Some(store) = &store {
                            if let Err(e) = store.put(&keys_arc[i], &report) {
                                eprintln!(
                                    "[results: failed to journal cell {} ({e}); kept in memory]",
                                    keys_arc[i]
                                );
                            }
                        }
                        Ok(report)
                    },
                );
                for (t, res) in results.into_iter().enumerate() {
                    slots[todo[t]] = Some(match res {
                        Ok(inner) => inner,
                        Err(e) => Err(e),
                    });
                }
            } else {
                let configs_arc: Arc<Vec<SimConfig>> = Arc::new(configs.to_vec());
                let traces: Arc<Vec<Option<Arc<PackedTrace>>>> =
                    Arc::new(frozen.iter().map(|r| r.as_ref().ok().cloned()).collect());
                // A `--run-cell` child recomputing a grid that does
                // not hold its target must neither re-journal cells
                // nor trip scripted faults aimed at the target.
                let store = if child.is_some() {
                    None
                } else {
                    self.store.clone()
                };
                let inject = child.is_none();
                let window_threads = self.window_threads;
                let results = run_cells(
                    todo.len(),
                    grid_workers.min(todo.len()),
                    self.cell_timeout,
                    move |t| {
                        let i = todo_arc[t];
                        let (c, a) = (i / n_spec, i % n_spec);
                        if inject {
                            injected_cell_failure(c, a);
                        }
                        let trace = traces[a]
                            .as_ref()
                            .expect("cell scheduled only for frozen spec");
                        let report = if window_threads >= 1 {
                            Engine::run_windowed(&configs_arc[c], trace.as_ref(), window_threads)
                        } else {
                            Simulator::run(&configs_arc[c], trace.as_ref())
                        };
                        if let Some(store) = &store {
                            if let Err(e) = store.put(&keys_arc[i], &report) {
                                eprintln!(
                                    "[results: failed to journal cell {} ({e}); kept in memory]",
                                    keys_arc[i]
                                );
                            }
                        }
                        report
                    },
                );
                for (t, res) in results.into_iter().enumerate() {
                    slots[todo[t]] = Some(res);
                }
            }
        }
        if self.store.is_some() {
            eprintln!("[results: {replayed} replayed, {computed} computed]");
        }
        let mut failures = Vec::new();
        let mut reports: Vec<SimReport> = Vec::with_capacity(n);
        for (i, slot) in slots.into_iter().enumerate() {
            match slot.expect("every cell resolved") {
                Ok(r) => reports.push(r),
                Err(error) => {
                    let (c, a) = (i / n_spec, i % n_spec);
                    failures.push(CellFailure {
                        config: format!("config {c} '{}'", configs[c].icache_org.label()),
                        spec: format!("spec '{}'", specs[a].label()),
                        error,
                    });
                }
            }
        }
        if failures.is_empty() {
            Ok(GridRun {
                grid: Self::into_rows(reports, n_spec),
                replayed,
                computed,
            })
        } else {
            Err(GridError {
                completed: n - failures.len(),
                total: n,
                failures,
                crash_dir,
            })
        }
    }

    /// The pre-freeze grid: every cell regenerates its workload from
    /// the spec. Kept only so the perf harness can measure the frozen
    /// grid's improvement against it (`BENCH_baseline.json`'s
    /// `trace.grid` section) — experiments should use
    /// [`Runner::run_grid`]. No fault isolation or store on this
    /// path: it exists to time raw simulation.
    pub fn run_grid_regenerating(
        &self,
        configs: &[SimConfig],
        specs: &[WorkloadSpec],
    ) -> Vec<Vec<SimReport>> {
        let instructions = self.instructions;
        let flat = fan_out(configs.len() * specs.len(), |i| {
            let (c, a) = (i / specs.len(), i % specs.len());
            run_spec_generated(&configs[c], &specs[a], instructions)
        });
        Self::into_rows(flat, specs.len())
    }

    fn into_rows(flat: Vec<SimReport>, row_len: usize) -> Vec<Vec<SimReport>> {
        let mut grid: Vec<Vec<SimReport>> = Vec::new();
        let mut it = flat.into_iter();
        loop {
            let row: Vec<SimReport> = it.by_ref().take(row_len).collect();
            if row.is_empty() {
                break;
            }
            grid.push(row);
        }
        grid
    }

    /// Convenience: baseline plus a list of organizations over
    /// single-tenant applications, all under the runner's prefetcher.
    /// Returns `(baseline_row, org_rows)`.
    pub fn run_orgs(
        &self,
        orgs: &[IcacheOrg],
        apps: &[AppProfile],
    ) -> (Vec<SimReport>, Vec<Vec<SimReport>>) {
        let mut configs = vec![self.baseline.clone()];
        configs.extend(orgs.iter().map(|o| self.baseline.with_org(o.clone())));
        let mut grid = self.run_grid(&configs, &WorkloadSpec::singles(apps));
        let baseline = grid.remove(0);
        (baseline, grid)
    }
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders a markdown table.
pub fn markdown_table(header: &[String], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        header.iter().map(|_| "---|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_reads_env() {
        // Default without env (other tests may set it; just bounds).
        assert!(instruction_budget() >= 1000);
    }

    #[test]
    fn thread_override_policy() {
        assert_eq!(bench_threads_from(None, 8), 8, "no override: available");
        assert_eq!(bench_threads_from(Some("3"), 8), 3, "override wins");
        assert_eq!(bench_threads_from(Some("0"), 8), 8, "zero rejected");
        assert_eq!(bench_threads_from(Some("lots"), 8), 8, "garbage rejected");
        assert_eq!(bench_threads_from(Some("16"), 8), 16, "may exceed cores");
        assert_eq!(bench_threads_from(None, 0), 1, "clamped to >= 1");
    }

    #[test]
    fn cell_timeout_policy() {
        assert_eq!(cell_timeout_from(None), None, "unset: disabled");
        assert_eq!(cell_timeout_from(Some("0")), None, "zero: disabled");
        assert_eq!(cell_timeout_from(Some("30")), Some(Duration::from_secs(30)));
        assert_eq!(cell_timeout_from(Some("soon")), None, "garbage rejected");
    }

    #[test]
    fn window_threads_policy() {
        assert_eq!(window_threads_from(None), 0, "unset: serial engine");
        assert_eq!(window_threads_from(Some("0")), 0, "explicit off");
        assert_eq!(window_threads_from(Some("1")), 1, "windowed, one worker");
        assert_eq!(window_threads_from(Some("4")), 4);
        assert_eq!(window_threads_from(Some("many")), 0, "garbage rejected");
    }

    #[test]
    fn thread_budget_splits_between_grid_and_windows() {
        // Windowed off (or one worker per cell): the whole budget
        // goes to grid cells.
        assert_eq!(split_thread_budget(8, 0), (8, false));
        assert_eq!(split_thread_budget(8, 1), (8, false));
        // Grid × window must stay within the one budget.
        assert_eq!(split_thread_budget(8, 4), (2, false));
        assert_eq!(split_thread_budget(8, 3), (2, false), "rounds down");
        assert_eq!(split_thread_budget(4, 4), (1, false), "exact fit");
        // One cell alone exceeds the budget: run it anyway (grid
        // serializes to 1) but flag the oversubscription.
        assert_eq!(split_thread_budget(2, 4), (1, true));
        assert_eq!(split_thread_budget(0, 0), (1, false), "clamped to >= 1");
    }

    #[test]
    fn run_cells_isolates_a_panicking_cell() {
        let results = run_cells(5, 2, None, |i| {
            if i == 2 {
                panic!("cell 2 exploded");
            }
            i * 10
        });
        assert_eq!(results.len(), 5);
        for (i, r) in results.iter().enumerate() {
            if i == 2 {
                assert_eq!(
                    r.as_ref().unwrap_err(),
                    &CellError::Panicked("cell 2 exploded".into())
                );
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 10, "other cells completed");
            }
        }
    }

    #[test]
    fn run_cells_watchdog_fails_stuck_cells_and_starves_the_rest() {
        // One worker, first cell sleeps far past the watchdog: cell 0
        // times out, and with the only worker wedged, cells 1 and 2
        // must resolve as starved instead of hanging the process.
        let limit = Duration::from_millis(150);
        let start = Instant::now();
        let results = run_cells(3, 1, Some(limit), |i| {
            if i == 0 {
                std::thread::sleep(Duration::from_secs(20));
            }
            i
        });
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "watchdog returned without waiting for the sleeper"
        );
        assert_eq!(
            results[0].as_ref().unwrap_err(),
            &CellError::TimedOut(limit)
        );
        assert_eq!(results[1].as_ref().unwrap_err(), &CellError::Starved);
        assert_eq!(results[2].as_ref().unwrap_err(), &CellError::Starved);
    }

    #[test]
    fn grid_failure_report_is_structured() {
        let e = GridError {
            completed: 3,
            total: 4,
            failures: vec![CellFailure {
                config: "config 1 'ACIC'".into(),
                spec: "spec 'sibench'".into(),
                error: CellError::Panicked("boom".into()),
            }],
            crash_dir: None,
        };
        let text = e.to_string();
        assert!(text.contains("3 of 4 cells completed"));
        assert!(text.contains("config 1 'ACIC'"));
        assert!(text.contains("panicked: boom"));
    }

    #[test]
    fn grid_failure_report_groups_identical_errors() {
        // One config panicking across a wide sweep: the summary must
        // group the identical errors, print 10 exemplars, and say how
        // many were elided — not emit one line per cell.
        let mut failures: Vec<CellFailure> = (0..25)
            .map(|a| CellFailure {
                config: "config 1 'ACIC'".into(),
                spec: format!("spec 's{a}'"),
                error: CellError::Panicked("boom".into()),
            })
            .collect();
        failures.push(CellFailure {
            config: "config 0 'LRU'".into(),
            spec: "spec 'x264'".into(),
            error: CellError::Starved,
        });
        let e = GridError {
            completed: 870 - 26,
            total: 870,
            failures,
            crash_dir: Some(std::path::PathBuf::from("crash-reports")),
        };
        let text = e.to_string();
        assert!(text.contains("844 of 870 cells completed, 26 failed"));
        assert!(text.contains("25 cells failed identically: panicked: boom"));
        assert!(text.contains("... and 15 more cells with this error"));
        assert_eq!(
            text.matches("[config 1 'ACIC'").count(),
            10,
            "exactly the first 10 exemplars are listed"
        );
        // The singleton keeps the compact one-line form.
        assert!(text.contains("[config 0 'LRU' x spec 'x264']: starved"));
        assert!(text.contains("crash reports: crash-reports"));
    }

    /// A panic payload whose `Drop` re-panics: `catch_unwind` catches
    /// the original panic, but dropping the payload inside `map_err`
    /// panics *again* outside any catch, killing the worker thread
    /// without aborting the process — the worker-death shape
    /// `run_cells` must survive.
    struct GrenadePayload;
    impl Drop for GrenadePayload {
        // The original unwind was already caught when the payload is
        // dropped, so this second panic escapes `catch_unwind` and
        // unwinds the worker thread itself (a panic-in-panic would
        // abort instead; this one doesn't, by construction).
        fn drop(&mut self) {
            panic!("payload drop panicked");
        }
    }

    #[test]
    fn run_cells_requeues_a_dead_workers_cell_once() {
        // Cell 1 kills its worker thread on the first attempt and
        // succeeds on the second; with another live worker around the
        // cell must be requeued and complete, not resolve Starved.
        let attempts = Arc::new(AtomicUsize::new(0));
        let attempts_in = Arc::clone(&attempts);
        let results = run_cells(4, 2, None, move |i| {
            if i == 1 && attempts_in.fetch_add(1, Ordering::Relaxed) == 0 {
                std::panic::panic_any(GrenadePayload);
            }
            i * 10
        });
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i * 10, "cell {i} completed");
        }
        assert_eq!(attempts.load(Ordering::Relaxed), 2, "cell 1 ran twice");
    }

    #[test]
    fn run_cells_gives_up_after_a_second_worker_death() {
        let results = run_cells(3, 2, None, |i| {
            if i == 1 {
                std::panic::panic_any(GrenadePayload);
            }
            i
        });
        assert_eq!(results[1].as_ref().unwrap_err(), &CellError::WorkerLost);
        assert_eq!(*results[0].as_ref().unwrap(), 0, "other cells unaffected");
        assert_eq!(*results[2].as_ref().unwrap(), 2);
    }

    #[test]
    fn grid_with_store_resumes_without_recomputing() {
        let dir = std::env::temp_dir().join(format!("acic-runner-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut runner = Runner {
            instructions: 3_000,
            baseline: SimConfig::default(),
            store: Some(Arc::new(ResultStore::open(&dir).unwrap())),
            cell_timeout: None,
            window_threads: 0,
            supervise: None,
        };
        let configs = vec![
            SimConfig::default(),
            SimConfig::default().with_org(IcacheOrg::Srrip),
        ];
        let specs = vec![
            WorkloadSpec::Single(AppProfile::sibench()),
            WorkloadSpec::Single(AppProfile::x264()),
        ];
        let first = runner.try_run_grid(&configs, &specs).unwrap();
        assert_eq!((first.replayed, first.computed), (0, 4));
        // A fresh store handle over the same directory: everything
        // replays from the journal, nothing is recomputed, and the
        // grid is bit-identical.
        runner.store = Some(Arc::new(ResultStore::open(&dir).unwrap()));
        let second = runner.try_run_grid(&configs, &specs).unwrap();
        assert_eq!((second.replayed, second.computed), (4, 0));
        assert_eq!(
            format!("{:?}", first.grid),
            format!("{:?}", second.grid),
            "replayed grid bit-identical to computed grid"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sampled_runner_produces_sampled_reports() {
        let runner = Runner {
            instructions: 400_000,
            baseline: SimConfig::default().with_schedule(SampleSchedule::Periodic {
                period: 100_000,
                warmup_len: 30_000,
                detailed_len: 10_000,
            }),
            store: None,
            cell_timeout: None,
            window_threads: 0,
            supervise: None,
        };
        let apps = vec![AppProfile::sibench()];
        let grid = runner.run_grid(
            std::slice::from_ref(&runner.baseline),
            &WorkloadSpec::singles(&apps),
        );
        assert!(grid[0][0].sampled.is_some(), "schedule threads through");
        assert!(Runner::with_schedule(SampleSchedule::default_sampled())
            .baseline
            .schedule
            .is_sampled());
    }

    #[test]
    fn windowed_grid_matches_direct_windowed_runs() {
        // A runner with window_threads >= 1 must produce, cell for
        // cell, exactly what Engine::run_windowed produces on the
        // same frozen trace — the runner adds scheduling and
        // journaling, never simulation semantics.
        let sched = SampleSchedule::Periodic {
            period: 100_000,
            warmup_len: 30_000,
            detailed_len: 10_000,
        };
        let runner = Runner {
            instructions: 400_000,
            baseline: SimConfig::default().with_schedule(sched),
            store: None,
            cell_timeout: None,
            window_threads: 2,
            supervise: None,
        };
        let configs = vec![
            runner.baseline.clone(),
            runner.baseline.with_org(IcacheOrg::acic_default()),
        ];
        let specs = vec![WorkloadSpec::Single(AppProfile::sibench())];
        let grid = runner.run_grid(&configs, &specs);
        let trace = must_freeze(&specs[0], runner.instructions);
        for (c, cfg) in configs.iter().enumerate() {
            let direct = Engine::run_windowed(cfg, trace.as_ref(), 1);
            assert_eq!(grid[c][0].sampled, direct.sampled, "pooled stats");
            assert_eq!(grid[c][0].total_cycles, direct.total_cycles);
            assert_eq!(grid[c][0].l1i.demand_misses, direct.l1i.demand_misses);
            assert!(grid[c][0].sampled.is_some(), "windowed cells are sampled");
        }
    }

    #[test]
    fn windowed_journal_replays_across_worker_counts_but_not_modes() {
        // The windowed cell key excludes the worker count (reports
        // are bit-identical across counts) but includes the mode, so
        // a serial sweep never replays a windowed journal entry.
        let dir = std::env::temp_dir().join(format!("acic-runner-wstore-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sched = SampleSchedule::Periodic {
            period: 100_000,
            warmup_len: 30_000,
            detailed_len: 10_000,
        };
        let mut runner = Runner {
            instructions: 400_000,
            baseline: SimConfig::default().with_schedule(sched),
            store: Some(Arc::new(ResultStore::open(&dir).unwrap())),
            cell_timeout: None,
            window_threads: 2,
            supervise: None,
        };
        let configs = vec![runner.baseline.clone()];
        let specs = vec![WorkloadSpec::Single(AppProfile::sibench())];
        let first = runner.try_run_grid(&configs, &specs).unwrap();
        assert_eq!((first.replayed, first.computed), (0, 1));
        runner.window_threads = 4;
        let second = runner.try_run_grid(&configs, &specs).unwrap();
        assert_eq!(
            (second.replayed, second.computed),
            (1, 0),
            "worker count does not invalidate the journal"
        );
        runner.window_threads = 0;
        let serial = runner.try_run_grid(&configs, &specs).unwrap();
        assert_eq!(
            (serial.replayed, serial.computed),
            (0, 1),
            "serial mode never replays windowed cells"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grid_runs_in_config_by_app_order() {
        let runner = Runner {
            instructions: 5_000,
            baseline: SimConfig::default(),
            store: None,
            cell_timeout: None,
            window_threads: 0,
            supervise: None,
        };
        let apps = vec![AppProfile::sibench(), AppProfile::x264()];
        let configs = vec![
            SimConfig::default(),
            SimConfig::default().with_org(IcacheOrg::Larger36k),
        ];
        let grid = runner.run_grid(&configs, &WorkloadSpec::singles(&apps));
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0].len(), 2);
        assert_eq!(grid[0][0].app, "sibench");
        assert_eq!(grid[0][1].app, "x264");
        assert_eq!(grid[1][0].org, "36KB L1i");
    }

    #[test]
    fn freeze_specs_shares_structurally_equal_specs() {
        let a = WorkloadSpec::Single(AppProfile::sibench());
        let specs = vec![a.clone(), WorkloadSpec::Single(AppProfile::x264()), a];
        let traces = freeze_specs(&specs, 1_000);
        assert_eq!(traces.len(), 3);
        assert!(
            Arc::ptr_eq(&traces[0], &traces[2]),
            "equal specs share one frozen arena"
        );
        assert!(!Arc::ptr_eq(&traces[0], &traces[1]));
    }

    /// The acceptance pin: a frozen, spec-deduplicated grid is
    /// bit-identical to serial generator-backed runs — across
    /// configs, single- and multi-tenant specs, and repeats.
    #[test]
    fn frozen_grid_matches_generator_backed_runs() {
        let runner = Runner {
            instructions: 4_000,
            baseline: SimConfig::default(),
            store: None,
            cell_timeout: None,
            window_threads: 0,
            supervise: None,
        };
        let specs = vec![
            WorkloadSpec::Single(AppProfile::sibench()),
            WorkloadSpec::MultiTenant {
                profiles: vec![AppProfile::sibench(), AppProfile::x264()],
                quantum: 500,
            },
        ];
        let configs = vec![
            SimConfig::default(),
            SimConfig::default().with_org(IcacheOrg::Srrip),
        ];
        let parallel_a = runner.run_grid(&configs, &specs);
        let parallel_b = runner.run_grid(&configs, &specs);
        for (c, cfg) in configs.iter().enumerate() {
            for (a, spec) in specs.iter().enumerate() {
                let serial = run_spec_generated(cfg, spec, runner.instructions);
                for r in [&parallel_a[c][a], &parallel_b[c][a]] {
                    assert_eq!(r.total_cycles, serial.total_cycles);
                    assert_eq!(r.total_instructions, serial.total_instructions);
                    assert_eq!(r.l1i.demand_misses, serial.l1i.demand_misses);
                    assert_eq!(r.branch.mispredicts, serial.branch.mispredicts);
                    assert_eq!(r.context_switches, serial.context_switches);
                    assert_eq!(r.app, serial.app);
                }
            }
        }
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a".into(), "b".into()], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }
}

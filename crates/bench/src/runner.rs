//! Shared experiment plumbing: instruction budgets, spec-keyed frozen
//! traces, parallel simulation fan-out, and markdown rendering.
//!
//! Every experiment path acquires instructions the same way now: a
//! [`WorkloadSpec`] is frozen **once** into an immutable
//! [`PackedTrace`] (via [`crate::trace_store::freeze`], which also
//! serves `--record-traces`/`--traces`), and every configuration row,
//! thread, and repeat replays the shared `Arc` zero-copy. A
//! C-config × A-spec grid therefore pays A generation passes instead
//! of C × A — the generation cost that used to dominate figure wall
//! time after the simulators got fast. Replay is bit-identical to
//! generation (same stream, same name-derived seeds), pinned by
//! `frozen_grid_matches_generator_backed_runs` below.

use acic_sim::{IcacheOrg, PrefetcherKind, SampleSchedule, SimConfig, SimReport, Simulator};
use acic_trace::PackedTrace;
use acic_workloads::AppProfile;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

pub use acic_workloads::{short_name, split_budget, WorkloadSpec};

/// Instructions simulated per application: `ACIC_EXP_INSTRUCTIONS` or
/// 1 M (the paper runs 500 M–1 B; shapes stabilize well below that).
pub fn instruction_budget() -> u64 {
    std::env::var("ACIC_EXP_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Resolves the grid worker count from an `ACIC_BENCH_THREADS`-style
/// override and the machine's available parallelism: a parseable
/// positive override wins (clamped to ≥ 1 by construction — zero and
/// garbage fall back), otherwise `available`. Pure so the policy is
/// testable without touching the process environment.
pub fn bench_threads_from(var: Option<&str>, available: usize) -> usize {
    var.and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(available)
        .max(1)
}

/// Grid worker count: `ACIC_BENCH_THREADS` (clamped to ≥ 1) or the
/// machine's available parallelism.
pub fn bench_threads() -> usize {
    bench_threads_from(
        std::env::var("ACIC_BENCH_THREADS").ok().as_deref(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2),
    )
}

/// Work-stealing parallel map over `0..work`: an atomic cursor hands
/// out indices so long items (OPT cells, oracle pre-passes) don't
/// serialize behind static chunking. Results come back in index
/// order; `f` runs on worker threads.
fn fan_out<T: Send>(work: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    if work == 0 {
        return Vec::new();
    }
    let threads = bench_threads().min(work);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let next_ref = &next;
    let f_ref = &f;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                if i >= work {
                    break;
                }
                tx.send((i, f_ref(i))).expect("collector outlives workers");
            });
        }
    });
    drop(tx);
    let mut out: Vec<Option<T>> = (0..work).map(|_| None).collect();
    for (i, v) in rx {
        out[i] = Some(v);
    }
    out.into_iter()
        .map(|v| v.expect("all work completed"))
        .collect()
}

/// Freezes every spec in `specs` exactly once (structurally equal
/// specs share one frozen trace) and returns the per-spec shared
/// handles, in input order. Freezing fans out across the bench worker
/// pool — each distinct spec is one generation+encode pass.
pub fn freeze_specs(specs: &[WorkloadSpec], instructions: u64) -> Vec<Arc<PackedTrace>> {
    // Dedup by structural equality: map every spec to the ordinal of
    // its first occurrence.
    let mut unique: Vec<usize> = Vec::new();
    let mut to_unique: Vec<usize> = Vec::with_capacity(specs.len());
    for (i, s) in specs.iter().enumerate() {
        match specs[..i].iter().position(|t| t == s) {
            Some(j) => to_unique.push(to_unique[j]),
            None => {
                to_unique.push(unique.len());
                unique.push(i);
            }
        }
    }
    let frozen = fan_out(unique.len(), |u| {
        crate::trace_store::freeze(&specs[unique[u]], instructions)
    });
    to_unique.into_iter().map(|u| frozen[u].clone()).collect()
}

/// Runs one spec under `cfg` by replaying its frozen trace.
pub fn run_spec(cfg: &SimConfig, spec: &WorkloadSpec, instructions: u64) -> SimReport {
    let trace = crate::trace_store::freeze(spec, instructions);
    Simulator::run(cfg, trace.as_ref())
}

/// Runs one spec under `cfg` straight off the generator — the
/// pre-freeze path, kept (a) as the reference the bit-identity tests
/// pin packed replay against and (b) as the regeneration leg the perf
/// harness measures the frozen grid's win over.
pub fn run_spec_generated(cfg: &SimConfig, spec: &WorkloadSpec, instructions: u64) -> SimReport {
    Simulator::run(cfg, &spec.generator(instructions))
}

/// Runs one (configuration, application) pair over the app's frozen
/// trace.
pub fn run_config(cfg: &SimConfig, profile: &AppProfile, instructions: u64) -> SimReport {
    run_spec(cfg, &WorkloadSpec::Single(profile.clone()), instructions)
}

/// Runs a candidate configuration and the matching baseline on the
/// same frozen workload (one freeze, two replays); returns
/// `(candidate, baseline)`.
pub fn run_pair(
    cfg: &SimConfig,
    baseline: &SimConfig,
    profile: &AppProfile,
    instructions: u64,
) -> (SimReport, SimReport) {
    let trace = crate::trace_store::freeze(&WorkloadSpec::Single(profile.clone()), instructions);
    (
        Simulator::run(cfg, trace.as_ref()),
        Simulator::run(baseline, trace.as_ref()),
    )
}

/// A parallel fan-out over (organization x application) grids.
pub struct Runner {
    /// Simulation length per application.
    pub instructions: u64,
    /// Baseline configuration (LRU + the chosen prefetcher).
    pub baseline: SimConfig,
}

impl Runner {
    /// Creates a runner with the standard LRU+FDP baseline.
    pub fn new() -> Self {
        Runner {
            instructions: instruction_budget(),
            baseline: SimConfig::default(),
        }
    }

    /// Creates a runner over a different prefetcher baseline
    /// (Figures 20/21 use the entangling prefetcher).
    pub fn with_prefetcher(prefetcher: PrefetcherKind) -> Self {
        Runner {
            instructions: instruction_budget(),
            baseline: SimConfig::default().with_prefetcher(prefetcher),
        }
    }

    /// Creates a runner whose baseline (and therefore every config
    /// derived from it through [`Runner::run_orgs`]) simulates under
    /// the given fidelity schedule.
    pub fn with_schedule(schedule: SampleSchedule) -> Self {
        Runner {
            instructions: instruction_budget(),
            baseline: SimConfig::default().with_schedule(schedule),
        }
    }

    /// Runs every (config, workload spec) pair in parallel, returning
    /// results in `configs x specs` order.
    ///
    /// Scheduling is spec-keyed: each distinct spec is frozen into a
    /// [`PackedTrace`] exactly once (in parallel), then the
    /// config × spec cells replay the shared `Arc`s under
    /// work-stealing (an atomic cursor over the cell list) so long
    /// cells (OPT, oracle pre-passes) don't serialize behind static
    /// chunking. Thread count follows available parallelism,
    /// overridable via `ACIC_BENCH_THREADS` (clamped to ≥ 1 — handy
    /// for pinning CI or sharing a box). Results are identical to a
    /// serial generator-backed loop regardless of thread
    /// interleaving: packed replay is bit-identical to generation,
    /// each cell's workload seed derives only from its spec (profiles
    /// and quantum), and the simulator's internal seeds derive only
    /// from the workload name — never from cell order, thread
    /// identity, or wall-clock time (asserted by
    /// `frozen_grid_matches_generator_backed_runs`).
    pub fn run_grid(&self, configs: &[SimConfig], specs: &[WorkloadSpec]) -> Vec<Vec<SimReport>> {
        let traces = freeze_specs(specs, self.instructions);
        let flat = fan_out(configs.len() * specs.len(), |i| {
            let (c, a) = (i / specs.len(), i % specs.len());
            Simulator::run(&configs[c], traces[a].as_ref())
        });
        Self::into_rows(flat, specs.len())
    }

    /// The pre-freeze grid: every cell regenerates its workload from
    /// the spec. Kept only so the perf harness can measure the frozen
    /// grid's improvement against it (`BENCH_baseline.json`'s
    /// `trace.grid` section) — experiments should use
    /// [`Runner::run_grid`].
    pub fn run_grid_regenerating(
        &self,
        configs: &[SimConfig],
        specs: &[WorkloadSpec],
    ) -> Vec<Vec<SimReport>> {
        let instructions = self.instructions;
        let flat = fan_out(configs.len() * specs.len(), |i| {
            let (c, a) = (i / specs.len(), i % specs.len());
            run_spec_generated(&configs[c], &specs[a], instructions)
        });
        Self::into_rows(flat, specs.len())
    }

    fn into_rows(flat: Vec<SimReport>, row_len: usize) -> Vec<Vec<SimReport>> {
        let mut grid: Vec<Vec<SimReport>> = Vec::new();
        let mut it = flat.into_iter();
        loop {
            let row: Vec<SimReport> = it.by_ref().take(row_len).collect();
            if row.is_empty() {
                break;
            }
            grid.push(row);
        }
        grid
    }

    /// Convenience: baseline plus a list of organizations over
    /// single-tenant applications, all under the runner's prefetcher.
    /// Returns `(baseline_row, org_rows)`.
    pub fn run_orgs(
        &self,
        orgs: &[IcacheOrg],
        apps: &[AppProfile],
    ) -> (Vec<SimReport>, Vec<Vec<SimReport>>) {
        let mut configs = vec![self.baseline.clone()];
        configs.extend(orgs.iter().map(|o| self.baseline.with_org(o.clone())));
        let mut grid = self.run_grid(&configs, &WorkloadSpec::singles(apps));
        let baseline = grid.remove(0);
        (baseline, grid)
    }
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders a markdown table.
pub fn markdown_table(header: &[String], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        header.iter().map(|_| "---|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_reads_env() {
        // Default without env (other tests may set it; just bounds).
        assert!(instruction_budget() >= 1000);
    }

    #[test]
    fn thread_override_policy() {
        assert_eq!(bench_threads_from(None, 8), 8, "no override: available");
        assert_eq!(bench_threads_from(Some("3"), 8), 3, "override wins");
        assert_eq!(bench_threads_from(Some("0"), 8), 8, "zero rejected");
        assert_eq!(bench_threads_from(Some("lots"), 8), 8, "garbage rejected");
        assert_eq!(bench_threads_from(Some("16"), 8), 16, "may exceed cores");
        assert_eq!(bench_threads_from(None, 0), 1, "clamped to >= 1");
    }

    #[test]
    fn sampled_runner_produces_sampled_reports() {
        let runner = Runner {
            instructions: 400_000,
            baseline: SimConfig::default().with_schedule(SampleSchedule::Periodic {
                period: 100_000,
                warmup_len: 30_000,
                detailed_len: 10_000,
            }),
        };
        let apps = vec![AppProfile::sibench()];
        let grid = runner.run_grid(
            std::slice::from_ref(&runner.baseline),
            &WorkloadSpec::singles(&apps),
        );
        assert!(grid[0][0].sampled.is_some(), "schedule threads through");
        assert!(Runner::with_schedule(SampleSchedule::default_sampled())
            .baseline
            .schedule
            .is_sampled());
    }

    #[test]
    fn grid_runs_in_config_by_app_order() {
        let runner = Runner {
            instructions: 5_000,
            baseline: SimConfig::default(),
        };
        let apps = vec![AppProfile::sibench(), AppProfile::x264()];
        let configs = vec![
            SimConfig::default(),
            SimConfig::default().with_org(IcacheOrg::Larger36k),
        ];
        let grid = runner.run_grid(&configs, &WorkloadSpec::singles(&apps));
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0].len(), 2);
        assert_eq!(grid[0][0].app, "sibench");
        assert_eq!(grid[0][1].app, "x264");
        assert_eq!(grid[1][0].org, "36KB L1i");
    }

    #[test]
    fn freeze_specs_shares_structurally_equal_specs() {
        let a = WorkloadSpec::Single(AppProfile::sibench());
        let specs = vec![a.clone(), WorkloadSpec::Single(AppProfile::x264()), a];
        let traces = freeze_specs(&specs, 1_000);
        assert_eq!(traces.len(), 3);
        assert!(
            Arc::ptr_eq(&traces[0], &traces[2]),
            "equal specs share one frozen arena"
        );
        assert!(!Arc::ptr_eq(&traces[0], &traces[1]));
    }

    /// The acceptance pin: a frozen, spec-deduplicated grid is
    /// bit-identical to serial generator-backed runs — across
    /// configs, single- and multi-tenant specs, and repeats.
    #[test]
    fn frozen_grid_matches_generator_backed_runs() {
        let runner = Runner {
            instructions: 4_000,
            baseline: SimConfig::default(),
        };
        let specs = vec![
            WorkloadSpec::Single(AppProfile::sibench()),
            WorkloadSpec::MultiTenant {
                profiles: vec![AppProfile::sibench(), AppProfile::x264()],
                quantum: 500,
            },
        ];
        let configs = vec![
            SimConfig::default(),
            SimConfig::default().with_org(IcacheOrg::Srrip),
        ];
        let parallel_a = runner.run_grid(&configs, &specs);
        let parallel_b = runner.run_grid(&configs, &specs);
        for (c, cfg) in configs.iter().enumerate() {
            for (a, spec) in specs.iter().enumerate() {
                let serial = run_spec_generated(cfg, spec, runner.instructions);
                for r in [&parallel_a[c][a], &parallel_b[c][a]] {
                    assert_eq!(r.total_cycles, serial.total_cycles);
                    assert_eq!(r.total_instructions, serial.total_instructions);
                    assert_eq!(r.l1i.demand_misses, serial.l1i.demand_misses);
                    assert_eq!(r.branch.mispredicts, serial.branch.mispredicts);
                    assert_eq!(r.context_switches, serial.context_switches);
                    assert_eq!(r.app, serial.app);
                }
            }
        }
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a".into(), "b".into()], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }
}

//! Shared experiment plumbing: instruction budgets, parallel
//! simulation fan-out, and markdown rendering.

use acic_sim::{IcacheOrg, PrefetcherKind, SampleSchedule, SimConfig, SimReport, Simulator};
use acic_workloads::{AppProfile, MultiTenantWorkload, SyntheticWorkload};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Instructions simulated per application: `ACIC_EXP_INSTRUCTIONS` or
/// 1 M (the paper runs 500 M–1 B; shapes stabilize well below that).
pub fn instruction_budget() -> u64 {
    std::env::var("ACIC_EXP_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000)
}

/// Resolves the grid worker count from an `ACIC_BENCH_THREADS`-style
/// override and the machine's available parallelism: a parseable
/// positive override wins (clamped to ≥ 1 by construction — zero and
/// garbage fall back), otherwise `available`. Pure so the policy is
/// testable without touching the process environment.
pub fn bench_threads_from(var: Option<&str>, available: usize) -> usize {
    var.and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(available)
        .max(1)
}

/// Grid worker count: `ACIC_BENCH_THREADS` (clamped to ≥ 1) or the
/// machine's available parallelism.
pub fn bench_threads() -> usize {
    bench_threads_from(
        std::env::var("ACIC_BENCH_THREADS").ok().as_deref(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2),
    )
}

/// One cell's workload in an experiment grid: a single application,
/// or a quantum-scheduled multi-tenant interleave.
///
/// The grid instruction budget is the *total* per cell either way —
/// a multi-tenant cell splits it evenly across its tenants so cells
/// stay cycle-comparable.
#[derive(Clone, Debug)]
pub enum WorkloadSpec {
    /// One application, the whole budget.
    Single(AppProfile),
    /// `profiles` interleaved with `quantum` instructions per
    /// timeslice.
    MultiTenant {
        /// Tenant profiles (PCs overlap across tenants by design).
        profiles: Vec<AppProfile>,
        /// Context-switch quantum in instructions.
        quantum: u64,
    },
}

impl WorkloadSpec {
    /// Wraps a list of applications as single-tenant specs.
    pub fn singles(apps: &[AppProfile]) -> Vec<WorkloadSpec> {
        apps.iter().cloned().map(WorkloadSpec::Single).collect()
    }

    /// Short label for figure columns.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Single(p) => short_name(&p.name),
            WorkloadSpec::MultiTenant { profiles, quantum } => {
                format!("{}ten/q{}k", profiles.len(), quantum / 1000)
            }
        }
    }

    /// Runs this spec under `cfg` with a total budget of
    /// `instructions`.
    pub fn run(&self, cfg: &SimConfig, instructions: u64) -> SimReport {
        match self {
            WorkloadSpec::Single(profile) => {
                let wl = SyntheticWorkload::with_instructions(profile.clone(), instructions);
                Simulator::run(cfg, &wl)
            }
            WorkloadSpec::MultiTenant { profiles, quantum } => {
                let per_tenant = instructions / profiles.len().max(1) as u64;
                let mut builder = MultiTenantWorkload::new(*quantum);
                for p in profiles {
                    builder = builder.tenant(p.clone(), per_tenant);
                }
                let wl = builder.build();
                Simulator::run(cfg, &wl)
            }
        }
    }
}

impl From<AppProfile> for WorkloadSpec {
    fn from(p: AppProfile) -> Self {
        WorkloadSpec::Single(p)
    }
}

/// Runs one (configuration, application) pair.
pub fn run_config(cfg: &SimConfig, profile: &AppProfile, instructions: u64) -> SimReport {
    let wl = SyntheticWorkload::with_instructions(profile.clone(), instructions);
    Simulator::run(cfg, &wl)
}

/// Runs a candidate configuration and the matching baseline on the
/// same workload; returns `(candidate, baseline)`.
pub fn run_pair(
    cfg: &SimConfig,
    baseline: &SimConfig,
    profile: &AppProfile,
    instructions: u64,
) -> (SimReport, SimReport) {
    let wl = SyntheticWorkload::with_instructions(profile.clone(), instructions);
    (Simulator::run(cfg, &wl), Simulator::run(baseline, &wl))
}

/// A parallel fan-out over (organization x application) grids.
pub struct Runner {
    /// Simulation length per application.
    pub instructions: u64,
    /// Baseline configuration (LRU + the chosen prefetcher).
    pub baseline: SimConfig,
}

impl Runner {
    /// Creates a runner with the standard LRU+FDP baseline.
    pub fn new() -> Self {
        Runner {
            instructions: instruction_budget(),
            baseline: SimConfig::default(),
        }
    }

    /// Creates a runner over a different prefetcher baseline
    /// (Figures 20/21 use the entangling prefetcher).
    pub fn with_prefetcher(prefetcher: PrefetcherKind) -> Self {
        Runner {
            instructions: instruction_budget(),
            baseline: SimConfig::default().with_prefetcher(prefetcher),
        }
    }

    /// Creates a runner whose baseline (and therefore every config
    /// derived from it through [`Runner::run_orgs`]) simulates under
    /// the given fidelity schedule.
    pub fn with_schedule(schedule: SampleSchedule) -> Self {
        Runner {
            instructions: instruction_budget(),
            baseline: SimConfig::default().with_schedule(schedule),
        }
    }

    /// Runs every (config, workload spec) pair in parallel, returning
    /// results in `configs x specs` order.
    ///
    /// Scheduling is work-stealing (an atomic cursor over the cell
    /// list) so long cells (OPT, oracle pre-passes) don't serialize
    /// behind static chunking; thread count follows available
    /// parallelism, overridable via `ACIC_BENCH_THREADS` (clamped to
    /// ≥ 1 — handy for pinning CI or sharing a box). Results are
    /// identical to a serial loop regardless
    /// of thread interleaving: each cell's workload seed derives only
    /// from its spec (profiles + quantum), and the simulator's
    /// internal seeds derive only from the workload name — never from
    /// cell order, thread identity, or wall-clock time (asserted by
    /// `grid_is_deterministic_and_matches_serial`).
    pub fn run_grid(&self, configs: &[SimConfig], specs: &[WorkloadSpec]) -> Vec<Vec<SimReport>> {
        let mut work: Vec<(usize, usize)> = Vec::new();
        for c in 0..configs.len() {
            for a in 0..specs.len() {
                work.push((c, a));
            }
        }
        let next = AtomicUsize::new(0);
        let threads = bench_threads().min(work.len().max(1));
        let (tx, rx) = mpsc::channel::<(usize, SimReport)>();
        let work_ref = &work;
        let next_ref = &next;
        let instructions = self.instructions;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= work_ref.len() {
                        break;
                    }
                    let (c, a) = work_ref[i];
                    let report = specs[a].run(&configs[c], instructions);
                    tx.send((i, report)).expect("collector outlives workers");
                });
            }
        });
        drop(tx);
        let mut flat: Vec<Option<SimReport>> = vec![None; work.len()];
        for (i, report) in rx {
            flat[i] = Some(report);
        }
        let mut grid: Vec<Vec<SimReport>> = Vec::with_capacity(configs.len());
        let mut it = flat.into_iter();
        for _ in 0..configs.len() {
            let mut row = Vec::with_capacity(specs.len());
            for _ in 0..specs.len() {
                row.push(it.next().flatten().expect("all work completed"));
            }
            grid.push(row);
        }
        grid
    }

    /// Convenience: baseline plus a list of organizations over
    /// single-tenant applications, all under the runner's prefetcher.
    /// Returns `(baseline_row, org_rows)`.
    pub fn run_orgs(
        &self,
        orgs: &[IcacheOrg],
        apps: &[AppProfile],
    ) -> (Vec<SimReport>, Vec<Vec<SimReport>>) {
        let mut configs = vec![self.baseline.clone()];
        configs.extend(orgs.iter().map(|o| self.baseline.with_org(o.clone())));
        let mut grid = self.run_grid(&configs, &WorkloadSpec::singles(apps));
        let baseline = grid.remove(0);
        (baseline, grid)
    }
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders a markdown table.
pub fn markdown_table(header: &[String], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&format!("| {} |\n", header.join(" | ")));
    out.push_str(&format!(
        "|{}\n",
        header.iter().map(|_| "---|").collect::<String>()
    ));
    for row in rows {
        out.push_str(&format!("| {} |\n", row.join(" | ")));
    }
    out
}

/// Short names used as figure columns.
pub fn short_name(app: &str) -> String {
    app.replace("-analytics", "").replace("-http", "")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_reads_env() {
        // Default without env (other tests may set it; just bounds).
        assert!(instruction_budget() >= 1000);
    }

    #[test]
    fn thread_override_policy() {
        assert_eq!(bench_threads_from(None, 8), 8, "no override: available");
        assert_eq!(bench_threads_from(Some("3"), 8), 3, "override wins");
        assert_eq!(bench_threads_from(Some("0"), 8), 8, "zero rejected");
        assert_eq!(bench_threads_from(Some("lots"), 8), 8, "garbage rejected");
        assert_eq!(bench_threads_from(Some("16"), 8), 16, "may exceed cores");
        assert_eq!(bench_threads_from(None, 0), 1, "clamped to >= 1");
    }

    #[test]
    fn sampled_runner_produces_sampled_reports() {
        let runner = Runner {
            instructions: 400_000,
            baseline: SimConfig::default().with_schedule(SampleSchedule::Periodic {
                period: 100_000,
                warmup_len: 30_000,
                detailed_len: 10_000,
            }),
        };
        let apps = vec![AppProfile::sibench()];
        let grid = runner.run_grid(
            std::slice::from_ref(&runner.baseline),
            &WorkloadSpec::singles(&apps),
        );
        assert!(grid[0][0].sampled.is_some(), "schedule threads through");
        assert!(Runner::with_schedule(SampleSchedule::default_sampled())
            .baseline
            .schedule
            .is_sampled());
    }

    #[test]
    fn grid_runs_in_config_by_app_order() {
        let runner = Runner {
            instructions: 5_000,
            baseline: SimConfig::default(),
        };
        let apps = vec![AppProfile::sibench(), AppProfile::x264()];
        let configs = vec![
            SimConfig::default(),
            SimConfig::default().with_org(IcacheOrg::Larger36k),
        ];
        let grid = runner.run_grid(&configs, &WorkloadSpec::singles(&apps));
        assert_eq!(grid.len(), 2);
        assert_eq!(grid[0].len(), 2);
        assert_eq!(grid[0][0].app, "sibench");
        assert_eq!(grid[0][1].app, "x264");
        assert_eq!(grid[1][0].org, "36KB L1i");
    }

    #[test]
    fn grid_is_deterministic_and_matches_serial() {
        let runner = Runner {
            instructions: 4_000,
            baseline: SimConfig::default(),
        };
        let apps = vec![AppProfile::sibench(), AppProfile::x264()];
        let configs = vec![
            SimConfig::default(),
            SimConfig::default().with_org(IcacheOrg::Srrip),
        ];
        let parallel_a = runner.run_grid(&configs, &WorkloadSpec::singles(&apps));
        let parallel_b = runner.run_grid(&configs, &WorkloadSpec::singles(&apps));
        for (c, cfg) in configs.iter().enumerate() {
            for (a, app) in apps.iter().enumerate() {
                let serial = run_config(cfg, app, runner.instructions);
                for r in [&parallel_a[c][a], &parallel_b[c][a]] {
                    assert_eq!(r.total_cycles, serial.total_cycles);
                    assert_eq!(r.l1i.demand_misses, serial.l1i.demand_misses);
                    assert_eq!(r.app, serial.app);
                }
            }
        }
    }

    #[test]
    fn markdown_table_shape() {
        let t = markdown_table(&["a".into(), "b".into()], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }
}

//! Micro-benchmarks for the flat hot-path tables, each paired with
//! its retained legacy implementation so the layout win stays
//! measured, not asserted: the packed-lane CSHR vs. the
//! array-of-structs one, the ring-buffered two-level predictor vs.
//! the `VecDeque` one, and the open-addressed MSHR vs. the `HashMap`
//! one. Drive orders are identical within each pair.
//!
//! Run: `cargo bench -p acic-bench --bench hot_structs`
//! (CI runs it under `ACIC_BENCH_QUICK=1` as a smoke pass.)

use acic_core::{
    AcicConfig, Cshr, LegacyCshr, LegacyTwoLevelPredictor, ResolutionBuf, TwoLevelPredictor,
};
use acic_sim::mem::{LegacyMissTracker, MissTracker};
use acic_types::BlockAddr;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Deterministic probe-tag stream shared by both CSHR benches: a
/// steady mix of inserts (opening comparisons) and mostly-missing
/// searches, the shape the functional hot loop produces.
#[inline]
fn cshr_step(i: u64) -> (u16, u16, usize, u16) {
    let victim = (i % 4096) as u16;
    let contender = ((i + 7) % 4096) as u16;
    let set = (i % 64) as usize;
    let probe = (i.wrapping_mul(17) % 4096) as u16;
    (victim, contender, set, probe)
}

fn bench_cshr_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("cshr_probe");
    g.bench_function("flat", |b| {
        let mut cshr = Cshr::new(8, 32, 64);
        let mut buf = ResolutionBuf::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let (v, ct, set, probe) = cshr_step(i);
            if i.is_multiple_of(4) {
                black_box(cshr.insert(v, ct, set));
            }
            cshr.search_into(probe, set, &mut buf);
            black_box(buf.len());
        });
    });
    g.bench_function("legacy", |b| {
        let mut cshr = LegacyCshr::new(8, 32, 64);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let (v, ct, set, probe) = cshr_step(i);
            if i.is_multiple_of(4) {
                black_box(cshr.insert(v, ct, set));
            }
            black_box(cshr.search(probe, set).len());
        });
    });
    g.finish();
}

fn bench_predictor_train(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor_train");
    g.bench_function("ring", |b| {
        let mut p = TwoLevelPredictor::new(&AcicConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let tag = (i % 1000) as u16;
            let pred = p.predict(tag);
            // Train sparsely — ticks vastly outnumber trains on the
            // real hot path, which is exactly what the ring's
            // early-exit is built for.
            if i.is_multiple_of(13) {
                p.train(tag, i.is_multiple_of(3), i);
            }
            p.tick(i);
            black_box(pred);
        });
    });
    g.bench_function("legacy", |b| {
        let mut p = LegacyTwoLevelPredictor::new(&AcicConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let tag = (i % 1000) as u16;
            let pred = p.predict(tag);
            if i.is_multiple_of(13) {
                p.train(tag, i.is_multiple_of(3), i);
            }
            p.tick(i);
            black_box(pred);
        });
    });
    g.finish();
}

/// Shared MSHR drive: a rolling set of outstanding blocks with
/// merge-heavy lookups, far more lookups than inserts.
#[inline]
fn mshr_block(i: u64) -> BlockAddr {
    BlockAddr::new(0x4000 + (i % 24))
}

fn bench_mshr_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("mshr_lookup");
    g.bench_function("flat", |b| {
        let mut m = MissTracker::new(16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let now = i;
            if m.lookup(mshr_block(i), now).is_none() && !m.full(now) {
                m.insert(mshr_block(i), now + 200);
            }
            black_box(m.occupancy(now));
        });
    });
    g.bench_function("legacy", |b| {
        let mut m = LegacyMissTracker::new(16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let now = i;
            if m.lookup(mshr_block(i), now).is_none() && !m.full(now) {
                m.insert(mshr_block(i), now + 200);
            }
            black_box(m.occupancy(now));
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cshr_probe,
    bench_predictor_train,
    bench_mshr_lookup
);
criterion_main!(benches);

//! Micro-benchmarks for the event-horizon timing loop's hot
//! structures: the ring-buffered FTQ with its instruction arena
//! (entry build and fetch delivery), the batched contents tick the
//! skip-ahead loop relies on, and the dense vs event-horizon engine
//! end to end — the last pair keeps the tentpole's speedup measured,
//! not asserted.
//!
//! Run: `cargo bench -p acic-bench --bench timing_hot`
//! (CI runs it under `ACIC_BENCH_QUICK=1` as a smoke pass.)

use acic_sim::{Engine, Ftq, FtqEntry, IcacheOrg, SimConfig, TimingLoop};
use acic_trace::{Instr, VecTrace};
use acic_types::{Addr, BlockAddr};
use acic_workloads::{AppProfile, SyntheticWorkload};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// One fetch block's worth of instructions, shared by the FTQ benches.
fn block_instrs() -> Vec<Instr> {
    (0..8)
        .map(|k| Instr::alu(Addr::new(0x1000 + 4 * k)))
        .collect()
}

/// Fill-then-drain over the ring FTQ vs the legacy
/// `VecDeque<Vec<Instr>>` shape it replaced: same push order, same
/// per-instruction delivery reads, same pop cadence. The ring's wins
/// are the allocation-free entry build and the cache-dense arena.
fn bench_ftq_push_deliver(c: &mut Criterion) {
    let instrs = block_instrs();
    let mut g = c.benchmark_group("ftq_push_deliver");
    g.bench_function("ring_arena", |b| {
        let mut ftq = Ftq::new(24);
        let mut n = 0u64;
        b.iter(|| {
            while ftq.len() < 24 {
                n += 1;
                ftq.push(
                    FtqEntry {
                        block: BlockAddr::new(n),
                        first_index: n * 8,
                        ..FtqEntry::default()
                    },
                    &instrs,
                );
            }
            let mut sum = 0u64;
            while let Some((head, arena)) = ftq.front_mut_with_arena() {
                for k in 0..head.len as u64 {
                    sum ^= arena.get(head.start + k).pc().raw();
                }
                head.delivered = head.len as usize;
                ftq.pop_front();
            }
            black_box(sum);
        });
    });
    g.bench_function("vecdeque_vec", |b| {
        let mut ftq: std::collections::VecDeque<(BlockAddr, Vec<Instr>)> =
            std::collections::VecDeque::with_capacity(24);
        let mut n = 0u64;
        b.iter(|| {
            while ftq.len() < 24 {
                n += 1;
                ftq.push_back((BlockAddr::new(n), instrs.to_vec()));
            }
            let mut sum = 0u64;
            while let Some((_, entry)) = ftq.pop_front() {
                for i in &entry {
                    sum ^= i.pc().raw();
                }
            }
            black_box(sum);
        });
    });
    g.finish();
}

/// Just the entry-build path: copying one block run into the arena
/// (and releasing it) vs cloning it into a fresh `Vec` — the per-push
/// allocation the arena removed.
fn bench_entry_build(c: &mut Criterion) {
    let instrs = block_instrs();
    let mut g = c.benchmark_group("entry_build");
    g.bench_function("arena", |b| {
        let mut ftq = Ftq::new(4);
        b.iter(|| {
            ftq.push(FtqEntry::default(), &instrs);
            black_box(ftq.front().unwrap().len);
            ftq.pop_front();
        });
    });
    g.bench_function("vec_clone", |b| {
        b.iter(|| {
            let v = instrs.to_vec();
            black_box(v.len());
        });
    });
    g.finish();
}

/// Cycles per tick span — what a skipped quiet stretch costs.
const TICK_SPAN: u64 = 256;

/// ACIC contents tick over a quiet span: once per cycle (the dense
/// loop) vs once at the span's end (the event-horizon loop's batch,
/// legal because skipped cycles are strictly before `next_tick_due`).
fn bench_batched_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("contents_tick");
    g.bench_function("per_cycle", |b| {
        let mut contents = IcacheOrg::acic_default().build(7);
        let mut now = 0u64;
        b.iter(|| {
            for _ in 0..TICK_SPAN {
                now += 1;
                contents.tick(now);
            }
            black_box(contents.next_tick_due());
        });
    });
    g.bench_function("batched", |b| {
        let mut contents = IcacheOrg::acic_default().build(7);
        let mut now = 0u64;
        b.iter(|| {
            now += TICK_SPAN;
            contents.tick(now);
            black_box(contents.next_tick_due());
        });
    });
    g.finish();
}

/// Instructions per engine leg: small enough for criterion's sample
/// counts, long enough to reach steady-state miss behavior.
const ENGINE_INSTRUCTIONS: u64 = 20_000;

/// The tentpole pair: one full timing simulation per iteration, dense
/// vs event-horizon, identical trace and config (the equivalence
/// suite pins the reports bit-identical; this pins the speedup).
fn bench_timing_loop(c: &mut Criterion) {
    let trace = VecTrace::from_source(&SyntheticWorkload::with_instructions(
        AppProfile::web_search(),
        ENGINE_INSTRUCTIONS,
    ));
    let cfg = SimConfig::default().with_org(IcacheOrg::acic_default());
    let mut g = c.benchmark_group("timing_loop");
    g.bench_function("event_horizon", |b| {
        b.iter(|| {
            black_box(Engine::run_with_loop(
                &cfg,
                &trace,
                TimingLoop::EventHorizon,
            ))
        });
    });
    g.bench_function("dense", |b| {
        b.iter(|| black_box(Engine::run_with_loop(&cfg, &trace, TimingLoop::Dense)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ftq_push_deliver,
    bench_entry_build,
    bench_batched_tick,
    bench_timing_loop
);
criterion_main!(benches);

//! Bench target regenerating the paper's fig11_mpki output.
//! Run: `cargo bench -p acic-bench --bench fig11_mpki`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::fig11_mpki());
}

//! Bench target regenerating the multi-tenant scenario output.
//! Run: `cargo bench -p acic-bench --bench multi_tenant`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/cell).

fn main() {
    println!("{}", acic_bench::figures::multi_tenant());
}

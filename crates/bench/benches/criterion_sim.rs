//! Criterion benchmark of end-to-end simulation throughput
//! (instructions simulated per wall-clock second).
//!
//! The `sims_per_second` group is the PR-over-PR speed headline: it
//! pits the naive hot path (boxed-policy dispatch, one probe per
//! instruction) against the devirtualized run-batched path for the
//! LRU, SRRIP and ACIC organizations at 1 M instructions. Scale with
//! `ACIC_BENCH_INSTRUCTIONS`.

use acic_bench::baseline::{run_batched_devirt, run_naive_boxed};
use acic_cache::policy::PolicyKind;
use acic_sim::{functional, IcacheOrg, SimConfig, Simulator};
use acic_trace::VecTrace;
use acic_workloads::{AppProfile, SyntheticWorkload};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_throughput(c: &mut Criterion) {
    let n: u64 = std::env::var("ACIC_BENCH_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);
    let mut group = c.benchmark_group("sims_per_second");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n));
    // Materialized trace: measure the simulator, not the generator.
    let wl = VecTrace::from_source(&SyntheticWorkload::with_instructions(
        AppProfile::web_search(),
        n,
    ));
    // Naive baseline: trait-object dispatch, one probe per
    // instruction — the pre-optimization hot loop.
    group.bench_function("naive_boxed_unbatched_lru", |b| {
        b.iter(|| black_box(run_naive_boxed(PolicyKind::Lru, &wl)));
    });
    group.bench_function("naive_unbatched_acic", |b| {
        let org = IcacheOrg::acic_default();
        b.iter(|| black_box(functional::run_unbatched(&org, &wl)));
    });
    // Optimized: enum dispatch, one probe per block run.
    for (name, kind) in [
        ("devirt_batched_lru", PolicyKind::Lru),
        ("devirt_batched_srrip", PolicyKind::Srrip),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(run_batched_devirt(kind, &wl)));
        });
    }
    group.bench_function("devirt_batched_acic", |b| {
        let org = IcacheOrg::acic_default();
        b.iter(|| black_box(functional::run_functional(&org, &wl)));
    });
    group.finish();
}

fn bench_sim(c: &mut Criterion) {
    const N: u64 = 50_000;
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N));
    let wl = SyntheticWorkload::with_instructions(AppProfile::sibench(), N);
    group.bench_function("lru_fdp", |b| {
        let cfg = SimConfig::default();
        b.iter(|| black_box(Simulator::run(&cfg, &wl)));
    });
    group.bench_function("acic_fdp", |b| {
        let cfg = SimConfig::default().with_org(IcacheOrg::acic_default());
        b.iter(|| black_box(Simulator::run(&cfg, &wl)));
    });
    group.bench_function("opt_oracle", |b| {
        let cfg = SimConfig::default().with_org(IcacheOrg::Opt);
        b.iter(|| black_box(Simulator::run(&cfg, &wl)));
    });
    group.finish();
}

criterion_group!(benches, bench_sim, bench_throughput);
criterion_main!(benches);

//! Criterion benchmark of end-to-end simulation throughput
//! (instructions simulated per wall-clock second).

use acic_sim::{IcacheOrg, SimConfig, Simulator};
use acic_workloads::{AppProfile, SyntheticWorkload};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    const N: u64 = 50_000;
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N));
    let wl = SyntheticWorkload::with_instructions(AppProfile::sibench(), N);
    group.bench_function("lru_fdp", |b| {
        let cfg = SimConfig::default();
        b.iter(|| black_box(Simulator::run(&cfg, &wl)));
    });
    group.bench_function("acic_fdp", |b| {
        let cfg = SimConfig::default().with_org(IcacheOrg::acic_default());
        b.iter(|| black_box(Simulator::run(&cfg, &wl)));
    });
    group.bench_function("opt_oracle", |b| {
        let cfg = SimConfig::default().with_org(IcacheOrg::Opt);
        b.iter(|| black_box(Simulator::run(&cfg, &wl)));
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);

//! Bench target regenerating the paper's fig06_cshr_lifetime output.
//! Run: `cargo bench -p acic-bench --bench fig06_cshr_lifetime`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::fig06_cshr_lifetime());
}

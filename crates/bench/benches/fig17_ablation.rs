//! Bench target regenerating the paper's fig17_ablation output.
//! Run: `cargo bench -p acic-bench --bench fig17_ablation`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::fig17_ablation());
}

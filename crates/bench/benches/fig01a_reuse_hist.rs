//! Bench target regenerating the paper's fig01a_reuse_hist output.
//! Run: `cargo bench -p acic-bench --bench fig01a_reuse_hist`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::fig01a_reuse_hist());
}

//! Bench target regenerating the paper's fig20_21_entangling output.
//! Run: `cargo bench -p acic-bench --bench fig20_21_entangling`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::fig20_21_entangling());
}

//! Bench target regenerating the paper's table4_schemes output.
//! Run: `cargo bench -p acic-bench --bench table4_schemes`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::table4_schemes());
}

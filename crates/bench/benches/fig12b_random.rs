//! Bench target regenerating the paper's fig12b_random output.
//! Run: `cargo bench -p acic-bench --bench fig12b_random`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::fig12b_random());
}

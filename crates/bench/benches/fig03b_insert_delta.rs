//! Bench target regenerating the paper's fig03b_insert_delta output.
//! Run: `cargo bench -p acic-bench --bench fig03b_insert_delta`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::fig03b_insert_delta());
}

//! Bench target regenerating the paper's fig18_19_spec output.
//! Run: `cargo bench -p acic-bench --bench fig18_19_spec`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::fig18_19_spec());
}

//! Bench target regenerating the paper's fig13_admit_rate output.
//! Run: `cargo bench -p acic-bench --bench fig13_admit_rate`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::fig13_admit_rate());
}

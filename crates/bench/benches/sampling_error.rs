//! Bench target regenerating the sampling-error sweep (sampled
//! engine vs full detail).
//! Run: `cargo bench -p acic-bench --bench sampling_error`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/cell).

fn main() {
    println!("{}", acic_bench::figures::sampling_error());
}

//! Bench target regenerating the paper's fig12a_accuracy output.
//! Run: `cargo bench -p acic-bench --bench fig12a_accuracy`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::fig12a_accuracy());
}

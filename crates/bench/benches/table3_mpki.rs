//! Bench target regenerating the paper's table3_mpki output.
//! Run: `cargo bench -p acic-bench --bench table3_mpki`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::table3_mpki());
}

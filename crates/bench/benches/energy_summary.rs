//! Bench target regenerating the paper's energy_summary output.
//! Run: `cargo bench -p acic-bench --bench energy_summary`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::energy_summary());
}

//! Bench target regenerating the paper's fig16_over_ifilter output.
//! Run: `cargo bench -p acic-bench --bench fig16_over_ifilter`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::fig16_over_ifilter());
}

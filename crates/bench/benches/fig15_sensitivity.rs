//! Bench target regenerating the paper's fig15_sensitivity output.
//! Run: `cargo bench -p acic-bench --bench fig15_sensitivity`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::fig15_sensitivity());
}

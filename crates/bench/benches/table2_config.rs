//! Bench target regenerating the paper's table2_config output.
//! Run: `cargo bench -p acic-bench --bench table2_config`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::table2_config());
}

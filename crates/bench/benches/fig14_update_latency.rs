//! Bench target regenerating the paper's fig14_update_latency output.
//! Run: `cargo bench -p acic-bench --bench fig14_update_latency`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::fig14_update_latency());
}

//! Bench target regenerating the paper's table1_storage output.
//! Run: `cargo bench -p acic-bench --bench table1_storage`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::table1_storage());
}

//! Criterion micro-benchmarks for the core hardware structures:
//! throughput of the i-Filter, CSHR, two-level predictor, TAGE and
//! the set-associative cache. These measure *simulation* speed, not
//! paper figures.

use acic_cache::policy::PolicyKind;
use acic_cache::{AccessCtx, CacheGeometry, SetAssocCache};
use acic_core::{AcicConfig, Cshr, IFilter, TwoLevelPredictor};
use acic_sim::Tage;
use acic_types::{Addr, BlockAddr};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_ifilter(c: &mut Criterion) {
    c.bench_function("ifilter_access_insert", |b| {
        let mut f = IFilter::new(16);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let blk = BlockAddr::new(i % 40);
            if !f.access(blk) {
                black_box(f.insert(blk));
            }
        });
    });
}

fn bench_cshr(c: &mut Criterion) {
    c.bench_function("cshr_insert_search", |b| {
        let mut cshr = Cshr::new(8, 32, 64);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            cshr.insert(
                (i % 4096) as u16,
                ((i + 7) % 4096) as u16,
                (i % 64) as usize,
            );
            black_box(cshr.search((i.wrapping_mul(17) % 4096) as u16, (i % 64) as usize));
        });
    });
}

fn bench_predictor(c: &mut Criterion) {
    c.bench_function("two_level_predict_train", |b| {
        let mut p = TwoLevelPredictor::new(&AcicConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let tag = (i % 1000) as u16;
            let pred = p.predict(tag);
            p.train(tag, i.is_multiple_of(3), i);
            p.tick(i);
            black_box(pred);
        });
    });
}

fn bench_tage(c: &mut Criterion) {
    c.bench_function("tage_predict_train", |b| {
        let mut t = Tage::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(t.predict_and_train(Addr::new((i % 256) * 4), i % 7 < 3));
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("l1i_access_fill", |b| {
        let geom = CacheGeometry::l1i_32k();
        let mut cache = SetAssocCache::new(geom, PolicyKind::Lru.build(geom));
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let ctx = AccessCtx::demand(BlockAddr::new(i % 1500), i);
            if !cache.access(&ctx) {
                black_box(cache.fill(&ctx));
            }
        });
    });
}

criterion_group!(
    benches,
    bench_ifilter,
    bench_cshr,
    bench_predictor,
    bench_tage,
    bench_cache
);
criterion_main!(benches);

//! Bench target regenerating the paper's fig10_speedup output.
//! Run: `cargo bench -p acic-bench --bench fig10_speedup`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::fig10_speedup());
}

//! Bench target regenerating the paper's fig03a_ifilter_gap output.
//! Run: `cargo bench -p acic-bench --bench fig03a_ifilter_gap`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::fig03a_ifilter_gap());
}

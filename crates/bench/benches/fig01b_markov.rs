//! Bench target regenerating the paper's fig01b_markov output.
//! Run: `cargo bench -p acic-bench --bench fig01b_markov`
//! Scale with ACIC_EXP_INSTRUCTIONS (default 1M instructions/app).

fn main() {
    println!("{}", acic_bench::figures::fig01b_markov());
}

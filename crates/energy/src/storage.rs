//! Table I and Table IV storage calculators.

use acic_core::AcicConfig;

/// One compared scheme and its storage overhead (Table IV).
#[derive(Clone, Debug, PartialEq)]
pub struct SchemeStorage {
    /// Scheme name as it appears in Table IV.
    pub name: &'static str,
    /// Strategy family.
    pub strategy: &'static str,
    /// Additional storage in KiB over the baseline i-cache.
    pub kib: f64,
}

/// Computes a scheme's extra storage in KiB from first principles
/// (the bit arithmetic of Table IV).
///
/// # Examples
///
/// ```
/// use acic_energy::scheme_storage_kib;
///
/// // GHRP: 3 x 4096-entry tables of 2-bit counters + per-line state.
/// assert!((scheme_storage_kib("GHRP") - 4.06).abs() < 0.2);
/// ```
pub fn scheme_storage_kib(name: &str) -> f64 {
    let bits: u64 = match name {
        // 512 lines x 2-bit RRPV.
        "SRRIP" => 512 * 2,
        // 8K-entry SHCT x 2-bit + 512 lines x (13-bit sig + 1 reuse).
        "SHiP" => 8192 * 2 + 512 * 14,
        // 8K-entry predictor x 3-bit + 512 x (3-bit RRIP + 13-bit sig)
        // + 8 sampled sets x 64-entry occupancy vectors (~8 bit each).
        "Harmony" | "Hawkeye" => 8192 * 3 + 512 * 16 + 8 * 64 * 8,
        // 3 x 4096 x 2-bit tables + 16-bit global history + per-line
        // (16-bit signature + 1-bit prediction), per Table IV.
        "GHRP" => 3 * 4096 * 2 + 16 + 512 * 17,
        // 16-bit tracked tag + 3-bit way per duel slot x 16 + policy
        // counter; dominated by the segmented-LRU bits (1/line).
        "DSB" => 16 * (16 + 3) + 16 + 512 + 3400,
        // 128-entry RHT x (2 x 21-bit tags + 10-bit sig + 1 valid)
        // + 1024 x 4-bit BDCT.
        "OBM" => 128 * (42 + 10 + 1) + 1024 * 4,
        // 15-bit trace/line + two 2^14 x 2-bit tables.
        "VVC" => 512 * 15 + 2 * (1 << 14) * 2,
        // 48 blocks x (64 B data + ~58-bit tag + valid + 6 LRU).
        "VC3K" => 48 * (512 + 58 + 1 + 6),
        // 4 KB more data + 64 more tags.
        "36KB L1i" => 64 * (512 + 58 + 1 + 4),
        "OPT" => 0,
        // i-Filter only.
        "OPT Bypass" => AcicConfig::default().filter_bits(),
        "ACIC" => AcicConfig::default().storage_bits(),
        _ => 0,
    };
    bits as f64 / 8.0 / 1024.0
}

/// All Table IV rows in paper order.
pub fn storage_table_rows() -> Vec<SchemeStorage> {
    let rows = [
        ("SRRIP", "replacement policy"),
        ("SHiP", "replacement policy"),
        ("Harmony", "replacement policy"),
        ("GHRP", "replacement policy"),
        ("DSB", "bypassing policy"),
        ("OBM", "bypassing policy"),
        ("VVC", "victim cache"),
        ("VC3K", "victim cache"),
        ("36KB L1i", "larger i-cache"),
        ("OPT", "replacement policy"),
        ("OPT Bypass", "bypassing policy"),
        ("ACIC", "bypassing policy"),
    ];
    rows.iter()
        .map(|&(name, strategy)| SchemeStorage {
            name,
            strategy,
            kib: scheme_storage_kib(name),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acic_matches_table_one_total() {
        assert!((scheme_storage_kib("ACIC") - 2.67).abs() < 0.01);
    }

    #[test]
    fn acic_is_smaller_than_ghrp() {
        // The paper's headline: ACIC needs ~2/3 of GHRP's storage.
        let acic = scheme_storage_kib("ACIC");
        let ghrp = scheme_storage_kib("GHRP");
        assert!(acic < ghrp, "ACIC {acic} vs GHRP {ghrp}");
        assert!(acic / ghrp < 0.75);
    }

    #[test]
    fn opt_is_free_and_unimplementable() {
        assert_eq!(scheme_storage_kib("OPT"), 0.0);
    }

    #[test]
    fn table_rows_cover_figure_ten_legends() {
        let rows = storage_table_rows();
        assert_eq!(rows.len(), 12);
        assert!(rows.iter().all(|r| r.kib >= 0.0));
    }

    #[test]
    fn vc3k_holds_three_kb_of_data() {
        // 48 x 64 B = 3 KB data; with tags it is slightly more.
        let kib = scheme_storage_kib("VC3K");
        assert!(kib > 3.0 && kib < 3.6, "{kib}");
    }
}

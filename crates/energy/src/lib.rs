//! Storage and energy accounting (§III-D, Tables I & IV).
//!
//! Two parts:
//!
//! * [`storage`] — exact bit-level storage calculators: ACIC's Table I
//!   breakdown (reusing [`acic_core::AcicConfig`]) and Table IV's
//!   per-scheme overhead numbers.
//! * [`model`] — an analytic chip-energy model in the spirit of
//!   McPAT + CACTI 7 at 22 nm. The paper feeds real McPAT/CACTI
//!   models; we use plausible synthetic constants (documented per
//!   item), so **only relative deltas between configurations are
//!   meaningful**, which is all §III-D claims (ACIC saves ~0.63% chip
//!   energy).

pub mod model;
pub mod storage;

pub use model::{ChipEnergy, EnergyModel};
pub use storage::{scheme_storage_kib, storage_table_rows, SchemeStorage};

//! Analytic chip-energy model (McPAT/CACTI-flavored; synthetic
//! constants at a notional 22 nm, 4 GHz).
//!
//! Energy = leakage power x execution time + per-event dynamic
//! energies, summed over core activity, cache accesses, DRAM traffic,
//! and ACIC's extra structures (i-Filter, HRT, PT, CSHR). Constants
//! are *synthetic but proportioned like CACTI outputs* (bigger arrays
//! cost more per access and leak more); only relative deltas between
//! two configurations are meaningful.

use acic_sim::SimReport;

/// Per-event energies in picojoules and leakage in watts.
#[derive(Clone, Debug, PartialEq)]
pub struct EnergyModel {
    /// Core dynamic energy per retired instruction (pJ).
    pub core_per_instr_pj: f64,
    /// L1 (i or d) access energy (pJ).
    pub l1_access_pj: f64,
    /// L2 access energy (pJ).
    pub l2_access_pj: f64,
    /// L3 access energy (pJ).
    pub l3_access_pj: f64,
    /// DRAM access energy (pJ).
    pub dram_access_pj: f64,
    /// i-Filter access energy (pJ) — tiny fully-associative buffer.
    pub ifilter_access_pj: f64,
    /// Predictor (HRT+PT) event energy (pJ).
    pub predictor_event_pj: f64,
    /// CSHR search/insert energy (pJ).
    pub cshr_event_pj: f64,
    /// Chip leakage power (W).
    pub chip_leakage_w: f64,
    /// Extra leakage of ACIC's 2.67 KB of state (W).
    pub acic_leakage_w: f64,
    /// Clock frequency (Hz) to convert cycles to seconds.
    pub frequency_hz: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            core_per_instr_pj: 120.0,
            l1_access_pj: 12.0,
            l2_access_pj: 45.0,
            l3_access_pj: 110.0,
            dram_access_pj: 4000.0,
            ifilter_access_pj: 1.6,
            predictor_event_pj: 0.5,
            cshr_event_pj: 0.9,
            chip_leakage_w: 1.9,
            acic_leakage_w: 0.0006,
            frequency_hz: 4.0e9,
        }
    }
}

/// Energy breakdown of one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChipEnergy {
    /// Dynamic energy (J).
    pub dynamic_j: f64,
    /// Leakage energy (J).
    pub leakage_j: f64,
}

impl ChipEnergy {
    /// Total chip energy (J).
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.leakage_j
    }
}

impl EnergyModel {
    /// Evaluates a simulation report.
    ///
    /// The `is_acic` flag adds the i-Filter/predictor/CSHR activity
    /// and leakage for the ACIC organization.
    pub fn evaluate(&self, report: &SimReport) -> ChipEnergy {
        let time_s = report.total_cycles as f64 / self.frequency_hz;
        let is_acic = report.acic.is_some();

        let l1i_accesses = report.l1i.demand_accesses + report.l1i.prefetch_accesses;
        let l1d_accesses = report.l1d.demand_accesses;
        let l2_accesses = report.l2.demand_accesses;
        let l3_accesses = report.l3.demand_accesses;

        let mut dynamic_pj = report.total_instructions as f64 * self.core_per_instr_pj
            + (l1i_accesses + l1d_accesses) as f64 * self.l1_access_pj
            + l2_accesses as f64 * self.l2_access_pj
            + l3_accesses as f64 * self.l3_access_pj
            + report.dram_accesses as f64 * self.dram_access_pj;

        let mut leakage_w = self.chip_leakage_w;
        if is_acic {
            // Every demand access probes the i-Filter and searches the
            // CSHR; every decision touches HRT/PT.
            dynamic_pj +=
                report.l1i.demand_accesses as f64 * (self.ifilter_access_pj + self.cshr_event_pj);
            if let Some(acic) = &report.acic {
                dynamic_pj += (acic.decisions * 2) as f64 * self.predictor_event_pj;
            }
            leakage_w += self.acic_leakage_w;
        }

        ChipEnergy {
            dynamic_j: dynamic_pj * 1e-12,
            leakage_j: leakage_w * time_s,
        }
    }

    /// Relative chip-energy change of `candidate` vs `baseline`
    /// (negative = candidate saves energy).
    pub fn relative_delta(&self, candidate: &SimReport, baseline: &SimReport) -> f64 {
        let c = self.evaluate(candidate).total_j();
        let b = self.evaluate(baseline).total_j();
        (c - b) / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_sim::{IcacheOrg, PrefetcherKind, SimConfig, Simulator};
    use acic_workloads::{AppProfile, SyntheticWorkload};

    #[test]
    fn energy_is_positive_and_dominated_by_leakage_plus_core() {
        let wl = SyntheticWorkload::with_instructions(AppProfile::sibench(), 50_000);
        let r = Simulator::run(&SimConfig::default(), &wl);
        let e = EnergyModel::default().evaluate(&r);
        assert!(e.dynamic_j > 0.0 && e.leakage_j > 0.0);
    }

    #[test]
    fn faster_run_uses_less_leakage() {
        let wl = SyntheticWorkload::with_instructions(AppProfile::media_streaming(), 200_000);
        let cfg = SimConfig {
            prefetcher: PrefetcherKind::None,
            ..SimConfig::default()
        };
        let base = Simulator::run(&cfg, &wl);
        let opt = Simulator::run(&cfg.with_org(IcacheOrg::Opt), &wl);
        let m = EnergyModel::default();
        assert!(
            m.evaluate(&opt).leakage_j <= m.evaluate(&base).leakage_j,
            "OPT should not run longer than LRU"
        );
    }

    #[test]
    fn relative_delta_is_zero_against_self() {
        let wl = SyntheticWorkload::with_instructions(AppProfile::sibench(), 20_000);
        let r = Simulator::run(&SimConfig::default(), &wl);
        let m = EnergyModel::default();
        assert_eq!(m.relative_delta(&r, &r), 0.0);
    }
}

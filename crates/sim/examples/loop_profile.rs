//! Quick timing-loop diagnostic: dense vs event-horizon wall time and
//! skipped-cycle fraction on the default configuration.
//!
//! ```sh
//! cargo run --release -p acic-sim --example loop_profile [instructions]
//! ```

use acic_sim::{Engine, IcacheOrg, SimConfig, TimingLoop};
use acic_workloads::{AppProfile, SyntheticWorkload};

fn main() {
    let instructions: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let wl = SyntheticWorkload::with_instructions(AppProfile::web_search(), instructions);
    let trace = acic_trace::VecTrace::from_source(&wl);
    for org in [IcacheOrg::Lru, IcacheOrg::Srrip, IcacheOrg::acic_default()] {
        let cfg = SimConfig::default().with_org(org.clone());
        let mut row = format!("{:<22}", cfg.icache_org.label());
        let mut reports = Vec::new();
        for tl in [TimingLoop::Dense, TimingLoop::EventHorizon] {
            let t0 = std::time::Instant::now();
            let r = Engine::run_with_loop(&cfg, &trace, tl);
            let dt = t0.elapsed().as_secs_f64();
            row.push_str(&format!(
                " {:?}: {:>5.1}M ips (cycles {})",
                tl,
                instructions as f64 / dt / 1e6,
                r.total_cycles
            ));
            reports.push(format!("{r:?}"));
        }
        let same = reports[0] == reports[1];
        row.push_str(if same { "  identical" } else { "  MISMATCH" });
        println!("{row}");
    }
}

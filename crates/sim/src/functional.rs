//! Functional (contents-only) simulation fast path.
//!
//! Most of the paper's figures need miss counts, admission statistics
//! and predictor behavior — not cycle-accurate timing. This module
//! runs an L1i organization over a trace with none of the pipeline
//! machinery: no front end, no backend, no memory-hierarchy timing.
//!
//! The hot loop is **run-batched**: [`BlockRuns`] groups consecutive
//! same-block instructions into a single i-cache access, so a run of
//! 16 straight-line instructions costs one filter+cache+CSHR probe
//! instead of sixteen. This matches the hardware (one fetch-group
//! access per block transition) and the access-index convention used
//! by the oracle and the timing simulator — for the same trace, the
//! functional and timing paths see the identical access sequence.
//!
//! The per-access step itself (oracle-cursor advance, context build,
//! access + fill-on-miss) is `engine::contents_step`, shared with the
//! [`Engine`](crate::Engine)'s warmup phase — the functional loop and
//! the sampled engine's functional warming are the same code.
//!
//! [`run_unbatched`] keeps the naive one-probe-per-instruction loop as
//! a reference baseline so throughput benchmarks (and the committed
//! `BENCH_*.json` trajectory) can quantify what batching buys.
//!
//! # Examples
//!
//! ```
//! use acic_sim::functional::run_functional;
//! use acic_sim::IcacheOrg;
//! use acic_workloads::{AppProfile, SyntheticWorkload};
//!
//! let wl = SyntheticWorkload::with_instructions(AppProfile::sibench(), 50_000);
//! let r = run_functional(&IcacheOrg::acic_default(), &wl);
//! assert_eq!(r.instructions, 50_000);
//! assert!(r.l1i_mpki() > 0.0);
//! ```

use crate::icache::IcacheOrg;
use acic_cache::{AccessCtx, CacheStats};
use acic_core::{AcicIcache, AcicStats};
use acic_trace::{BlockRuns, ReuseOracle, TraceSource, NO_NEXT_USE};
use acic_types::Asid;

/// Result of a functional (contents-only) simulation.
#[derive(Clone, Debug)]
pub struct FunctionalReport {
    /// Workload name.
    pub app: String,
    /// Organization label.
    pub org: String,
    /// Instructions consumed.
    pub instructions: u64,
    /// Block-level accesses performed (runs in batched mode,
    /// instructions in unbatched mode).
    pub accesses: u64,
    /// Context switches crossed (0 for single-tenant traces).
    pub context_switches: u64,
    /// L1i contents statistics.
    pub l1i: CacheStats,
    /// ACIC admission statistics, when the organization is ACIC.
    pub acic: Option<AcicStats>,
}

impl FunctionalReport {
    /// L1i demand misses per kilo-instruction.
    pub fn l1i_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l1i.demand_misses as f64 * 1000.0 / self.instructions as f64
        }
    }
}

fn oracle_for<W: TraceSource>(org: &IcacheOrg, workload: &W) -> Option<ReuseOracle> {
    org.needs_oracle().then(|| {
        // Oracle keys are flattened tagged identities, so tenants'
        // overlapping VAs stay distinct futures.
        let seq: Vec<_> = BlockRuns::new(workload.iter())
            .map(|r| r.oracle_key())
            .collect();
        ReuseOracle::from_sequence(&seq)
    })
}

fn finish(
    app: &str,
    org_label: &str,
    contents: Box<dyn acic_cache::IcacheContents>,
    instructions: u64,
    accesses: u64,
    context_switches: u64,
) -> FunctionalReport {
    let acic = contents
        .as_any()
        .downcast_ref::<AcicIcache>()
        .map(|a| *a.acic_stats());
    FunctionalReport {
        app: app.to_string(),
        org: org_label.to_string(),
        instructions,
        accesses,
        context_switches,
        l1i: contents.stats(),
        acic,
    }
}

/// Runs `org` over `workload` with run-batched accesses: one
/// filter+cache+CSHR probe per block run. Misses fill immediately
/// (infinite MSHRs, zero latency — contents semantics only).
pub fn run_functional<W: TraceSource>(org: &IcacheOrg, workload: &W) -> FunctionalReport {
    let oracle = oracle_for(org, workload);
    let mut cursor = oracle.as_ref().map(|o| o.cursor());
    let mut contents = org.build(workload.seed());
    let wants_tick = contents.wants_tick();
    let mut instructions = 0u64;
    let mut accesses = 0u64;
    let mut cur_asid = Asid::HOST;
    let mut context_switches = 0u64;
    for run in BlockRuns::new(workload.iter()) {
        accesses += 1;
        instructions += run.len as u64;
        if run.asid != cur_asid {
            cur_asid = run.asid;
            context_switches += 1;
            contents.on_context_switch(run.asid);
        }
        crate::engine::contents_step(
            contents.as_mut(),
            &mut cursor,
            run.tagged(),
            accesses,
            false,
        );
        // Use the access index as the clock for organizations with
        // delayed predictor-update pipelines.
        if wants_tick {
            contents.tick(accesses);
        }
    }
    finish(
        workload.name(),
        org.label(),
        contents,
        instructions,
        accesses,
        context_switches,
    )
}

/// Reference baseline: probes the organization once per *instruction*
/// instead of once per block run.
///
/// This is the naive loop the run-batched path replaces; it exists so
/// benchmarks can measure the batching speedup against a live
/// implementation rather than a guess. Not suitable for figure
/// generation: per-instruction re-references inflate access counts
/// and perturb reuse-trained policies.
pub fn run_unbatched<W: TraceSource>(org: &IcacheOrg, workload: &W) -> FunctionalReport {
    let oracle = oracle_for(org, workload);
    let mut cursor = oracle.as_ref().map(|o| o.cursor());
    let mut contents = org.build(workload.seed());
    let wants_tick = contents.wants_tick();
    let mut instructions = 0u64;
    let mut last_block = None;
    let mut cur_asid = Asid::HOST;
    let mut context_switches = 0u64;
    // The oracle is indexed one position per BlockRun, and runs end
    // at a block change, a taken branch (even to the same block), OR
    // a context switch — mirror all three boundaries or the cursor
    // desyncs.
    let mut prev_ended_run = true;
    for instr in workload.iter() {
        instructions += 1;
        let tagged = instr.tagged_block();
        if instr.asid() != cur_asid {
            cur_asid = instr.asid();
            context_switches += 1;
            contents.on_context_switch(instr.asid());
        }
        let starts_run = prev_ended_run || last_block != Some(tagged);
        let next_use = match cursor.as_mut() {
            Some(c) => {
                if starts_run {
                    c.advance(tagged.oracle_key());
                }
                c.next_use_of(tagged.oracle_key())
            }
            None => NO_NEXT_USE,
        };
        last_block = Some(tagged);
        prev_ended_run = instr.is_taken_branch();
        let mut ctx = AccessCtx::demand_tagged(tagged, instructions).with_next_use(next_use);
        if let Some(c) = cursor.as_ref() {
            ctx = ctx.with_oracle(c);
        }
        if !contents.access(&ctx).hit {
            contents.fill(&ctx);
        }
        if wants_tick {
            contents.tick(instructions);
        }
    }
    finish(
        workload.name(),
        org.label(),
        contents,
        instructions,
        instructions,
        context_switches,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_workloads::{AppProfile, SyntheticWorkload};

    fn wl(n: u64) -> SyntheticWorkload {
        SyntheticWorkload::with_instructions(AppProfile::sibench(), n)
    }

    #[test]
    fn batched_counts_runs_not_instructions() {
        let w = wl(20_000);
        let r = run_functional(&IcacheOrg::Lru, &w);
        assert_eq!(r.instructions, 20_000);
        assert!(r.accesses < r.instructions, "runs must batch instructions");
        assert_eq!(r.l1i.demand_accesses, r.accesses);
    }

    #[test]
    fn batched_and_unbatched_agree_on_lru_misses() {
        // For pure-recency LRU, extra same-block touches change
        // neither residency nor relative recency order, so the miss
        // count is probe-granularity invariant.
        let w = wl(20_000);
        let a = run_functional(&IcacheOrg::Lru, &w);
        let b = run_unbatched(&IcacheOrg::Lru, &w);
        assert_eq!(a.l1i.demand_misses, b.l1i.demand_misses);
        assert!(b.accesses > a.accesses);
    }

    #[test]
    fn functional_is_deterministic() {
        let w = wl(10_000);
        let a = run_functional(&IcacheOrg::acic_default(), &w);
        let b = run_functional(&IcacheOrg::acic_default(), &w);
        assert_eq!(a.l1i.demand_misses, b.l1i.demand_misses);
        assert_eq!(
            a.acic.expect("acic stats").decisions,
            b.acic.expect("acic stats").decisions
        );
    }

    #[test]
    fn oracle_orgs_run_functionally() {
        let w = wl(15_000);
        let opt = run_functional(&IcacheOrg::Opt, &w);
        let lru = run_functional(&IcacheOrg::Lru, &w);
        assert!(
            opt.l1i.demand_misses <= lru.l1i.demand_misses,
            "OPT {} vs LRU {}",
            opt.l1i.demand_misses,
            lru.l1i.demand_misses
        );
    }

    #[test]
    fn acic_functional_reports_admissions() {
        let w = SyntheticWorkload::with_instructions(AppProfile::web_search(), 60_000);
        let r = run_functional(&IcacheOrg::acic_default(), &w);
        let acic = r.acic.expect("ACIC stats");
        assert!(acic.decisions > 0);
    }
}

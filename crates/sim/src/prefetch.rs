//! Instruction prefetchers: fetch-directed prefetching (FDP, [31])
//! and the entangling prefetcher ([76]).
//!
//! Both produce *candidate blocks*; the simulator filters them against
//! the L1i contents and MSHR budget, issues them down the hierarchy,
//! and fills them on arrival (into the i-Filter for ACIC, matching
//! Figure 9's timeline).

use crate::frontend::Ftq;
use acic_types::hash::{fold, mix64};
use acic_types::{Cycle, TaggedBlock};
use std::collections::VecDeque;

/// Entangled-table capacity (§IV-H4: 4K entries).
const ENTANGLED_ENTRIES: usize = 4096;
/// Destinations per entangled entry.
const DSTS_PER_ENTRY: usize = 2;
/// Fetch-history window used to find entangling sources.
const HISTORY_LEN: usize = 64;

/// A prefetcher producing candidate blocks.
#[derive(Debug)]
pub enum Prefetcher {
    /// No prefetching.
    None,
    /// Fetch-directed: prefetch blocks already sitting in the FTQ.
    Fdp,
    /// Entangling: learn (source, destination) pairs timed to hide
    /// the miss latency.
    Entangling(Entangling),
}

impl Prefetcher {
    /// Candidate blocks to prefetch this cycle, given the FTQ
    /// contents (head excluded — it is the demand access).
    pub fn candidates(&mut self, ftq: &Ftq, out: &mut Vec<TaggedBlock>) {
        match self {
            Prefetcher::None => {}
            Prefetcher::Fdp => {
                for e in ftq.iter().skip(1) {
                    if e.prefetchable {
                        out.push(e.block.with_asid(e.asid));
                    }
                }
            }
            Prefetcher::Entangling(e) => e.drain_pending(out),
        }
    }

    /// Observes a demand fetch (hit or miss) of `block` at `now`.
    pub fn on_demand_fetch(&mut self, block: TaggedBlock, now: Cycle) {
        if let Prefetcher::Entangling(e) = self {
            e.on_demand_fetch(block, now);
        }
    }

    /// Observes a demand miss of `block` issued at `now` with total
    /// `latency` cycles to fill.
    pub fn on_demand_miss(&mut self, block: TaggedBlock, now: Cycle, latency: u64) {
        if let Prefetcher::Entangling(e) = self {
            e.on_demand_miss(block, now, latency);
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct EntangledEntry {
    tag: u32,
    valid: bool,
    dsts: [Option<TaggedBlock>; DSTS_PER_ENTRY],
    next_slot: usize,
}

/// The entangling instruction prefetcher.
///
/// On a demand miss, the block fetched roughly `latency` cycles
/// earlier becomes the *source* entangled with the missing
/// *destination*; later fetches of the source prefetch its
/// destinations just in time.
#[derive(Debug)]
pub struct Entangling {
    history: VecDeque<(Cycle, TaggedBlock)>,
    table: Vec<EntangledEntry>,
    pending: Vec<TaggedBlock>,
    /// Entanglings recorded (stats).
    pub entangled: u64,
}

impl Default for Entangling {
    fn default() -> Self {
        Self::new()
    }
}

impl Entangling {
    /// Creates an empty entangled table.
    pub fn new() -> Self {
        Entangling {
            history: VecDeque::with_capacity(HISTORY_LEN),
            table: vec![EntangledEntry::default(); ENTANGLED_ENTRIES],
            pending: Vec::new(),
            entangled: 0,
        }
    }

    fn slot_of(block: TaggedBlock) -> (usize, u32) {
        // Tagged identity: tenants entangle separately (identical to
        // the raw block address for the host space).
        let h = mix64(block.ident());
        (fold(h, 12) as usize, (fold(h ^ 0xe47a, 16)) as u32)
    }

    fn on_demand_fetch(&mut self, block: TaggedBlock, now: Cycle) {
        // Trigger prefetches for destinations entangled with `block`.
        let (slot, tag) = Self::slot_of(block);
        let e = &self.table[slot];
        if e.valid && e.tag == tag {
            for dst in e.dsts.into_iter().flatten() {
                self.pending.push(dst);
            }
        }
        self.history.push_back((now, block));
        if self.history.len() > HISTORY_LEN {
            self.history.pop_front();
        }
    }

    fn on_demand_miss(&mut self, block: TaggedBlock, now: Cycle, latency: u64) {
        // Source: the most recent fetch at least `latency` cycles old,
        // so that a prefetch issued there would have completed by now.
        let cutoff = now.saturating_sub(latency);
        let src = self
            .history
            .iter()
            .rev()
            .find(|&&(t, _)| t <= cutoff)
            .or_else(|| self.history.front())
            .map(|&(_, b)| b);
        let Some(src) = src else { return };
        if src == block {
            return;
        }
        let (slot, tag) = Self::slot_of(src);
        let e = &mut self.table[slot];
        if !e.valid || e.tag != tag {
            *e = EntangledEntry {
                tag,
                valid: true,
                dsts: [None; DSTS_PER_ENTRY],
                next_slot: 0,
            };
        }
        if e.dsts.contains(&Some(block)) {
            return;
        }
        e.dsts[e.next_slot] = Some(block);
        e.next_slot = (e.next_slot + 1) % DSTS_PER_ENTRY;
        self.entangled += 1;
    }

    fn drain_pending(&mut self, out: &mut Vec<TaggedBlock>) {
        out.append(&mut self.pending);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_types::BlockAddr;

    fn tb(b: u64) -> TaggedBlock {
        TaggedBlock::untagged(BlockAddr::new(b))
    }

    #[test]
    fn entangling_learns_miss_pairs() {
        let mut e = Entangling::new();
        let src = tb(10);
        let dst = tb(99);
        // src fetched at cycle 0; dst misses at cycle 100 with a
        // 50-cycle fill: src qualifies as the entangling source.
        e.on_demand_fetch(src, 0);
        e.on_demand_miss(dst, 100, 50);
        assert_eq!(e.entangled, 1);
        // Next time src is fetched, dst is prefetched.
        e.on_demand_fetch(src, 200);
        let mut out = Vec::new();
        e.drain_pending(&mut out);
        assert_eq!(out, vec![dst]);
    }

    #[test]
    fn no_self_entangling() {
        let mut e = Entangling::new();
        let b = tb(5);
        e.on_demand_fetch(b, 0);
        e.on_demand_miss(b, 100, 50);
        assert_eq!(e.entangled, 0);
    }

    #[test]
    fn destinations_rotate() {
        let mut e = Entangling::new();
        let src = tb(1);
        e.on_demand_fetch(src, 0);
        for (i, d) in [20u64, 21, 22].iter().enumerate() {
            e.on_demand_miss(tb(*d), 100 + i as u64, 50);
        }
        e.on_demand_fetch(src, 500);
        let mut out = Vec::new();
        e.drain_pending(&mut out);
        assert_eq!(out.len(), 2, "table holds two destinations");
    }

    #[test]
    fn fdp_yields_ftq_tail() {
        use crate::frontend::FtqEntry;
        let mut p = Prefetcher::Fdp;
        let mut ftq = Ftq::new(8);
        for b in 0..4u64 {
            ftq.push(
                FtqEntry {
                    block: BlockAddr::new(b),
                    ..FtqEntry::default()
                },
                &[],
            );
        }
        let mut out = Vec::new();
        p.candidates(&ftq, &mut out);
        assert_eq!(out.len(), 3, "head excluded");
    }
}

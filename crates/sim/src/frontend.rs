//! The decoupled front end: branch-prediction unit (BPU) running
//! ahead of fetch, the Fetch Target Queue, and fetch-state tracking.
//!
//! Trace-driven semantics: the BPU consumes fetch-block runs from the
//! trace, predicts every branch, and pushes runs into the FTQ. A
//! mispredicted branch stalls the BPU until the backend resolves that
//! branch (plus a redirect penalty) — the wrong path itself is not
//! simulated. BTB misses on taken branches charge a short
//! decode-redirect bubble.

use crate::branch::btb::Btb;
use crate::branch::tage::Tage;
use crate::config::{BranchSwitchMode, SimConfig};
use crate::report::BranchStats;
use acic_trace::{BranchClass, Instr, InstrKind, RunInstrs};
use acic_types::{Addr, Asid, BlockAddr, Cycle, ASID_IDENT_SHIFT};
use std::collections::VecDeque;

/// One fetch-target (block run) in the FTQ.
#[derive(Clone, Debug)]
pub struct FtqEntry {
    /// The instruction block to fetch.
    pub block: BlockAddr,
    /// Address space of the run.
    pub asid: Asid,
    /// Instructions of the run, tagged with global indices starting
    /// at `first_index`.
    pub instrs: Vec<Instr>,
    /// Global index of the first instruction.
    pub first_index: u64,
    /// Whether the demand i-cache access has been performed.
    pub accessed: bool,
    /// Cycle at which the block's bytes are available.
    pub ready_at: Cycle,
    /// Whether the block must be filled into the L1i when ready.
    pub needs_fill: bool,
    /// The block's next-use position captured at access time (for
    /// OPT's fill decision).
    pub next_use: u64,
    /// Instructions already delivered to decode.
    pub delivered: usize,
    /// Whether a prefetcher may act on this entry: false when the BPU
    /// reached this run only via a BTB miss or a misprediction — a
    /// real fetch-directed prefetcher cannot see past an unpredicted
    /// redirect.
    pub prefetchable: bool,
}

impl FtqEntry {
    /// Creates an entry (test helper; the front end normally builds
    /// these internally).
    pub fn new(block: BlockAddr, instrs: Vec<Instr>) -> Self {
        FtqEntry {
            block,
            asid: Asid::HOST,
            instrs,
            first_index: 0,
            accessed: false,
            ready_at: 0,
            needs_fill: false,
            next_use: acic_trace::NO_NEXT_USE,
            delivered: 0,
            prefetchable: true,
        }
    }
}

/// Why the BPU is not producing fetch targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BpuState {
    /// Producing normally (possibly delayed until a cycle).
    Running {
        /// Next cycle the BPU may process a run (BTB bubbles push
        /// this out).
        available_at: Cycle,
    },
    /// Waiting for the branch with this global index to resolve.
    WaitingOnBranch {
        /// Global instruction index of the mispredicted branch.
        index: u64,
    },
}

/// Entries in the indirect-target predictor (ITTAGE-flavored:
/// path-history-tagged targets, with the BTB as fallback).
const ITP_ENTRIES: usize = 16384;

#[derive(Clone, Copy, Debug, Default)]
struct ItpEntry {
    tag: u16,
    target: u64,
    valid: bool,
}

/// The decoupled front end.
pub struct FrontEnd {
    /// The Fetch Target Queue.
    pub ftq: VecDeque<FtqEntry>,
    capacity: usize,
    tage: Tage,
    btb: Btb,
    /// Indirect-target predictor: indexed and tagged by branch PC
    /// hashed with recent taken-branch path history, so per-request
    /// dispatch sequences become predictable after their first hop.
    itp: Vec<ItpEntry>,
    path_history: u64,
    /// Address space currently feeding the BPU.
    cur_asid: Asid,
    /// What prediction structures do when the stream switches spaces.
    switch_mode: BranchSwitchMode,
    state: BpuState,
    next_index: u64,
    redirect_penalty: u64,
    btb_miss_penalty: u64,
    stats: BranchStats,
    trace_done: bool,
}

impl FrontEnd {
    /// Builds the front end from the simulation config.
    pub fn new(cfg: &SimConfig) -> Self {
        FrontEnd {
            ftq: VecDeque::with_capacity(cfg.ftq_entries),
            capacity: cfg.ftq_entries,
            tage: Tage::new(),
            btb: Btb::new(8192, 4),
            itp: vec![ItpEntry::default(); ITP_ENTRIES],
            path_history: 0,
            cur_asid: Asid::HOST,
            switch_mode: cfg.branch_switch,
            state: BpuState::Running { available_at: 0 },
            next_index: 0,
            redirect_penalty: cfg.redirect_penalty,
            btb_miss_penalty: cfg.btb_miss_penalty,
            stats: BranchStats::default(),
            trace_done: false,
        }
    }

    /// Accumulated branch statistics.
    pub fn stats(&self) -> BranchStats {
        let mut s = self.stats;
        s.tage = self.tage.stats();
        s.btb = self.btb.stats();
        s
    }

    /// Whether the trace has been fully consumed and the FTQ drained.
    pub fn drained(&self) -> bool {
        self.trace_done && self.ftq.is_empty()
    }

    /// Whether the front end has consumed the whole trace.
    pub fn trace_done(&self) -> bool {
        self.trace_done
    }

    /// Global index of the next instruction the BPU will assign.
    pub fn instructions_entered(&self) -> u64 {
        self.next_index
    }

    /// The lookup key for branch structures: the raw PC in
    /// [`BranchSwitchMode::Flush`] mode (state never survives a
    /// switch, so keys need no disambiguation), the PC XOR-tagged
    /// with the ASID in [`BranchSwitchMode::Tag`] mode. ASID 0 maps
    /// to the raw PC either way, keeping single-tenant runs
    /// bit-identical.
    fn pc_key(&self, pc: Addr) -> Addr {
        match self.switch_mode {
            BranchSwitchMode::Flush => pc,
            BranchSwitchMode::Tag => {
                Addr::new(pc.raw() ^ ((self.cur_asid.raw() as u64) << ASID_IDENT_SHIFT))
            }
        }
    }

    /// Crosses a context switch: in flush mode every prediction
    /// structure is cleared (untagged hardware); in tag mode the
    /// state survives and future lookups are keyed by the new ASID.
    fn on_context_switch(&mut self, next: Asid) {
        self.cur_asid = next;
        if self.switch_mode == BranchSwitchMode::Flush {
            self.tage.flush();
            self.btb.flush();
            self.itp.fill(ItpEntry::default());
            self.path_history = 0;
        }
    }

    /// Gates statistics recording across the front end's prediction
    /// structures (warmup phase of a sampled simulation): TAGE and
    /// the BTB keep training, but their accuracy counters hold still.
    pub fn set_stats_enabled(&mut self, enabled: bool) {
        self.tage.set_stats_enabled(enabled);
        self.btb.set_stats_enabled(enabled);
    }

    /// Re-opens the fetch stream after a detailed window exhausted
    /// its instruction budget: the feeding closure returned `None`
    /// without the trace being over, so the engine clears the
    /// end-of-trace latch before the next window.
    pub fn resume_stream(&mut self) {
        self.trace_done = false;
    }

    /// Bulk-warmup training of every prediction structure, one
    /// instruction at a time — TAGE direction state plus the BTB and
    /// indirect-target predictor (the front end's large, slowest
    /// tables: a wide code footprint needs on the order of a million
    /// instructions to cover 8192 BTB entries). Equivalent to
    /// [`FrontEnd::train_run`] without run grouping; handles context
    /// switches per the configured switch mode.
    pub fn warm_branches(&mut self, instr: &Instr) {
        let InstrKind::Branch {
            target,
            taken,
            class,
        } = instr.kind
        else {
            return;
        };
        if instr.asid() != self.cur_asid {
            self.on_context_switch(instr.asid());
        }
        let key = self.pc_key(instr.pc());
        match class {
            BranchClass::Conditional => {
                self.tage.predict_and_train(key, taken);
                if taken && self.btb.lookup(key) != Some(target) {
                    self.btb.update(key, target);
                }
            }
            BranchClass::Direct | BranchClass::Call => {
                if self.btb.lookup(key) != Some(target) {
                    self.btb.update(key, target);
                }
            }
            BranchClass::Return => {}
            BranchClass::Indirect => {
                self.itp_update(key, target);
                self.btb.update(key, target);
                self.push_path_history(target);
            }
        }
    }

    /// Warmup-phase training: runs the prediction structures over one
    /// fetch run with no timing — no FTQ entry, no stall modeling, no
    /// global indices. Context switches still flush or re-key state
    /// per the configured switch mode. Call between
    /// [`FrontEnd::set_stats_enabled`]`(false)`/`(true)` so warmup
    /// traffic stays uncounted.
    pub fn train_run(&mut self, run: &RunInstrs) {
        for instr in run.instrs.iter() {
            self.warm_branches(instr);
        }
    }

    /// The backend resolved the branch with global `index` at `done`;
    /// unstall the BPU if it was the one being waited on.
    pub fn on_branch_resolved(&mut self, index: u64, done: Cycle) {
        if self.state == (BpuState::WaitingOnBranch { index }) {
            self.state = BpuState::Running {
                available_at: done + self.redirect_penalty,
            };
        }
    }

    fn itp_slot(&self, pc: acic_types::Addr) -> (usize, u16) {
        use acic_types::hash::{fold, mix2};
        let h = mix2(pc.raw(), self.path_history);
        (fold(h, 14) as usize, fold(h ^ 0x17a6e, 10) as u16)
    }

    fn itp_predict(&self, pc: acic_types::Addr) -> Option<acic_types::Addr> {
        let (slot, tag) = self.itp_slot(pc);
        let e = self.itp[slot];
        (e.valid && e.tag == tag).then(|| acic_types::Addr::new(e.target))
    }

    fn itp_update(&mut self, pc: acic_types::Addr, target: acic_types::Addr) {
        let (slot, tag) = self.itp_slot(pc);
        self.itp[slot] = ItpEntry {
            tag,
            target: target.raw(),
            valid: true,
        };
    }

    fn push_path_history(&mut self, target: acic_types::Addr) {
        // The single most recent indirect target: together with the
        // site PC it identifies the request type without dragging in
        // stale targets from the previous request (an ITTAGE with
        // geometric history lengths would find this length itself).
        self.path_history = acic_types::hash::fold(target.raw() >> 2, 16);
    }

    /// Runs the BPU for one cycle: processes at most one fetch-block
    /// run from `next_run` and pushes it into the FTQ.
    pub fn bpu_cycle<F>(&mut self, now: Cycle, mut next_run: F)
    where
        F: FnMut() -> Option<RunInstrs>,
    {
        let BpuState::Running { available_at } = self.state else {
            return;
        };
        if now < available_at || self.ftq.len() >= self.capacity || self.trace_done {
            return;
        }
        let Some(run) = next_run() else {
            self.trace_done = true;
            return;
        };
        if run.asid != self.cur_asid {
            self.on_context_switch(run.asid);
        }

        let first_index = self.next_index;
        self.next_index += run.instrs.len() as u64;
        let mut bubble = 0u64;
        let mut mispredicted_at: Option<u64> = None;

        for (k, instr) in run.instrs.iter().enumerate() {
            let InstrKind::Branch {
                target,
                taken,
                class,
            } = instr.kind
            else {
                continue;
            };
            let index = first_index + k as u64;
            match class {
                BranchClass::Conditional => {
                    let correct = self.tage.predict_and_train(self.pc_key(instr.pc()), taken);
                    if !correct {
                        self.stats.mispredicts += 1;
                        mispredicted_at = Some(index);
                        break;
                    }
                    if taken {
                        // Need the target from the BTB.
                        match self.btb.lookup(self.pc_key(instr.pc())) {
                            Some(t) if t == target => {}
                            _ => {
                                bubble += self.btb_miss_penalty;
                                let key = self.pc_key(instr.pc());
                                self.btb.update(key, target);
                            }
                        }
                    }
                }
                BranchClass::Direct | BranchClass::Call => {
                    match self.btb.lookup(self.pc_key(instr.pc())) {
                        Some(t) if t == target => {}
                        _ => {
                            bubble += self.btb_miss_penalty;
                            let key = self.pc_key(instr.pc());
                            self.btb.update(key, target);
                        }
                    }
                }
                BranchClass::Return => {
                    // Idealized return address stack: always correct.
                }
                BranchClass::Indirect => {
                    let key = self.pc_key(instr.pc());
                    let predicted = self.itp_predict(key).or_else(|| self.btb.lookup(key));
                    match predicted {
                        Some(t) if t == target => {}
                        Some(_) => {
                            // Wrong target: full misprediction.
                            self.btb.record_wrong_target();
                            self.stats.mispredicts += 1;
                            mispredicted_at = Some(index);
                        }
                        None => {
                            // Cold indirect: no target to fetch from.
                            self.stats.mispredicts += 1;
                            mispredicted_at = Some(index);
                        }
                    }
                    self.itp_update(key, target);
                    self.btb.update(key, target);
                    // Push the resolved target into the path history
                    // even on a misprediction (the front end learns the
                    // true path once the branch resolves) — otherwise a
                    // single wrong dispatch would leave every later
                    // site keyed on stale history.
                    self.push_path_history(target);
                    if mispredicted_at.is_some() {
                        break;
                    }
                }
            }
        }

        self.ftq.push_back(FtqEntry {
            block: run.block,
            asid: run.asid,
            instrs: run.instrs,
            first_index,
            accessed: false,
            ready_at: 0,
            needs_fill: false,
            next_use: acic_trace::NO_NEXT_USE,
            delivered: 0,
            prefetchable: bubble == 0 && mispredicted_at.is_none(),
        });

        self.state = match mispredicted_at {
            Some(index) => BpuState::WaitingOnBranch { index },
            None => BpuState::Running {
                available_at: now + 1 + bubble,
            },
        };
    }
}

impl core::fmt::Debug for FrontEnd {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FrontEnd")
            .field("ftq_len", &self.ftq.len())
            .field("state", &self.state)
            .field("next_index", &self.next_index)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_types::Addr;

    fn run_of(instrs: Vec<Instr>) -> RunInstrs {
        RunInstrs {
            block: instrs[0].pc().block(),
            asid: instrs[0].asid(),
            instrs,
        }
    }

    #[test]
    fn pushes_runs_until_full() {
        let cfg = SimConfig::default();
        let mut fe = FrontEnd::new(&cfg);
        for now in 0..30u64 {
            fe.bpu_cycle(now, || Some(run_of(vec![Instr::alu(Addr::new(now * 64))])));
        }
        assert_eq!(fe.ftq.len(), cfg.ftq_entries);
    }

    #[test]
    fn mispredict_stalls_until_resolution() {
        let cfg = SimConfig::default();
        let mut fe = FrontEnd::new(&cfg);
        // An indirect branch with no BTB entry: guaranteed mispredict.
        let br = Instr::branch(Addr::new(0), Addr::new(0x100), true, BranchClass::Indirect);
        fe.bpu_cycle(0, || Some(run_of(vec![br])));
        assert_eq!(fe.ftq.len(), 1);
        // Stalled: further cycles do nothing.
        fe.bpu_cycle(1, || Some(run_of(vec![Instr::alu(Addr::new(64))])));
        assert_eq!(fe.ftq.len(), 1);
        // Resolve the branch (global index 0) at cycle 10.
        fe.on_branch_resolved(0, 10);
        fe.bpu_cycle(10 + cfg.redirect_penalty, || {
            Some(run_of(vec![Instr::alu(Addr::new(64))]))
        });
        assert_eq!(fe.ftq.len(), 2);
    }

    #[test]
    fn trace_end_marks_done() {
        let cfg = SimConfig::default();
        let mut fe = FrontEnd::new(&cfg);
        fe.bpu_cycle(0, || None);
        assert!(fe.trace_done());
        assert!(fe.drained());
    }

    #[test]
    fn indirect_with_stable_target_learns() {
        let cfg = SimConfig::default();
        let mut fe = FrontEnd::new(&cfg);
        let br = Instr::branch(Addr::new(0), Addr::new(0x100), true, BranchClass::Indirect);
        // First encounter mispredicts; resolve it.
        fe.bpu_cycle(0, || Some(run_of(vec![br])));
        fe.on_branch_resolved(0, 5);
        // Second encounter: BTB now has the target; no stall.
        let before = fe.stats().mispredicts;
        fe.bpu_cycle(20, || Some(run_of(vec![br])));
        assert_eq!(fe.stats().mispredicts, before);
        assert_eq!(fe.ftq.len(), 2);
    }

    #[test]
    fn train_run_warms_predictors_without_stats() {
        let cfg = SimConfig::default();
        let mut fe = FrontEnd::new(&cfg);
        let br = Instr::branch(Addr::new(0), Addr::new(0x100), true, BranchClass::Indirect);
        fe.set_stats_enabled(false);
        fe.train_run(&run_of(vec![br]));
        fe.set_stats_enabled(true);
        let s = fe.stats();
        assert_eq!(s.mispredicts, 0);
        assert_eq!(s.btb.lookups, 0, "warmup lookups are uncounted");
        // The trained target now predicts: no mispredict, no stall.
        fe.bpu_cycle(0, || Some(run_of(vec![br])));
        assert_eq!(fe.stats().mispredicts, 0);
        fe.bpu_cycle(1, || Some(run_of(vec![Instr::alu(Addr::new(64))])));
        assert_eq!(fe.ftq.len(), 2, "BPU not stalled");
    }

    #[test]
    fn resume_stream_reopens_after_window_budget() {
        let cfg = SimConfig::default();
        let mut fe = FrontEnd::new(&cfg);
        fe.bpu_cycle(0, || None);
        assert!(fe.trace_done());
        fe.resume_stream();
        assert!(!fe.trace_done());
        fe.bpu_cycle(1, || Some(run_of(vec![Instr::alu(Addr::new(0))])));
        assert_eq!(fe.ftq.len(), 1);
    }

    #[test]
    fn global_indices_are_contiguous() {
        let cfg = SimConfig::default();
        let mut fe = FrontEnd::new(&cfg);
        fe.bpu_cycle(0, || {
            Some(run_of(vec![
                Instr::alu(Addr::new(0)),
                Instr::alu(Addr::new(4)),
            ]))
        });
        fe.bpu_cycle(1, || Some(run_of(vec![Instr::alu(Addr::new(64))])));
        assert_eq!(fe.ftq[0].first_index, 0);
        assert_eq!(fe.ftq[1].first_index, 2);
        assert_eq!(fe.instructions_entered(), 3);
    }
}

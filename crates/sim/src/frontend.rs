//! The decoupled front end: branch-prediction unit (BPU) running
//! ahead of fetch, the Fetch Target Queue, and fetch-state tracking.
//!
//! Trace-driven semantics: the BPU consumes fetch-block runs from the
//! trace, predicts every branch, and pushes runs into the FTQ. A
//! mispredicted branch stalls the BPU until the backend resolves that
//! branch (plus a redirect penalty) — the wrong path itself is not
//! simulated. BTB misses on taken branches charge a short
//! decode-redirect bubble.

use crate::branch::btb::Btb;
use crate::branch::tage::Tage;
use crate::config::{BranchSwitchMode, SimConfig};
use crate::report::BranchStats;
use acic_trace::{BranchClass, Instr, InstrKind, RunInstrs};
use acic_types::{Addr, Asid, BlockAddr, Cycle, ASID_IDENT_SHIFT};

/// One fetch-target (block run) in the FTQ. The run's instructions
/// live in the owning [`Ftq`]'s instruction arena; the entry carries
/// only their `[start, start + len)` position range.
#[derive(Clone, Copy, Debug)]
pub struct FtqEntry {
    /// The instruction block to fetch.
    pub block: BlockAddr,
    /// Address space of the run.
    pub asid: Asid,
    /// Arena position of the run's first instruction (read it back
    /// with [`InstrArena::get`]).
    pub start: u64,
    /// Number of instructions in the run.
    pub len: u32,
    /// Global index of the first instruction.
    pub first_index: u64,
    /// Whether the demand i-cache access has been performed.
    pub accessed: bool,
    /// Cycle at which the block's bytes are available.
    pub ready_at: Cycle,
    /// Whether the block must be filled into the L1i when ready.
    pub needs_fill: bool,
    /// The block's next-use position captured at access time (for
    /// OPT's fill decision).
    pub next_use: u64,
    /// Instructions already delivered to decode.
    pub delivered: usize,
    /// Whether a prefetcher may act on this entry: false when the BPU
    /// reached this run only via a BTB miss or a misprediction — a
    /// real fetch-directed prefetcher cannot see past an unpredicted
    /// redirect.
    pub prefetchable: bool,
}

impl Default for FtqEntry {
    fn default() -> Self {
        FtqEntry {
            block: BlockAddr::new(0),
            asid: Asid::HOST,
            start: 0,
            len: 0,
            first_index: 0,
            accessed: false,
            ready_at: 0,
            needs_fill: false,
            next_use: acic_trace::NO_NEXT_USE,
            delivered: 0,
            prefetchable: true,
        }
    }
}

/// Ring-buffer instruction arena backing the FTQ entries.
///
/// Positions are *absolute* (monotonically increasing `u64`), so an
/// entry's `start` stays valid across wraps and growth; the ring only
/// reclaims space when the FTQ pops an entry (`release_to`). Capacity
/// is a power of two and doubles on the cold overflow path, preserving
/// every live position — steady-state pushes are allocation-free.
#[derive(Debug)]
pub struct InstrArena {
    buf: Vec<Instr>,
    mask: u64,
    /// Absolute position of the oldest live instruction.
    head: u64,
    /// Absolute position one past the newest live instruction.
    tail: u64,
}

/// Initial arena capacity: 24 FTQ entries × at most 16 instructions
/// per 64 B fetch block leaves headroom; odd configs grow lazily.
const ARENA_INITIAL: usize = 1024;

impl InstrArena {
    fn new() -> Self {
        InstrArena {
            buf: vec![Instr::alu(Addr::new(0)); ARENA_INITIAL],
            mask: ARENA_INITIAL as u64 - 1,
            head: 0,
            tail: 0,
        }
    }

    /// Copies a run's instructions into the ring, returning the
    /// absolute position of the first one.
    fn push_run(&mut self, instrs: &[Instr]) -> u64 {
        let needed = self.tail - self.head + instrs.len() as u64;
        if needed > self.buf.len() as u64 {
            self.grow(needed);
        }
        let start = self.tail;
        for (k, i) in instrs.iter().enumerate() {
            self.buf[((start + k as u64) & self.mask) as usize] = *i;
        }
        self.tail = start + instrs.len() as u64;
        start
    }

    /// Cold path: doubles capacity until `needed` fits, re-laying the
    /// live range so absolute positions keep resolving.
    fn grow(&mut self, needed: u64) {
        let mut cap = self.buf.len() * 2;
        while (cap as u64) < needed {
            cap *= 2;
        }
        let mut buf = vec![Instr::alu(Addr::new(0)); cap];
        let mask = cap as u64 - 1;
        for pos in self.head..self.tail {
            buf[(pos & mask) as usize] = self.buf[(pos & self.mask) as usize];
        }
        self.buf = buf;
        self.mask = mask;
    }

    /// The instruction at absolute position `pos` (must be live).
    #[inline]
    pub fn get(&self, pos: u64) -> Instr {
        debug_assert!(self.head <= pos && pos < self.tail);
        self.buf[(pos & self.mask) as usize]
    }

    /// Reclaims everything before `pos` (FIFO release on entry pop).
    fn release_to(&mut self, pos: u64) {
        debug_assert!(self.head <= pos && pos <= self.tail);
        self.head = pos;
    }
}

/// The Fetch Target Queue: a fixed-capacity entry ring plus the
/// instruction arena its entries index into. Replaces the former
/// `VecDeque<FtqEntry>`-of-`Vec<Instr>` shape — pushes and pops are
/// allocation-free once the arena has warmed.
#[derive(Debug)]
pub struct Ftq {
    entries: Vec<FtqEntry>,
    head: usize,
    len: usize,
    arena: InstrArena,
}

impl Ftq {
    /// Builds an empty FTQ with room for `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Ftq {
            entries: vec![FtqEntry::default(); capacity.max(1)],
            head: 0,
            len: 0,
            arena: InstrArena::new(),
        }
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot(&self, i: usize) -> usize {
        (self.head + i) % self.entries.len()
    }

    /// The entry at queue position `i` (0 = oldest).
    pub fn get(&self, i: usize) -> &FtqEntry {
        assert!(i < self.len, "FTQ index {i} out of {}", self.len);
        &self.entries[self.slot(i)]
    }

    /// The oldest entry.
    pub fn front(&self) -> Option<&FtqEntry> {
        (self.len > 0).then(|| &self.entries[self.head])
    }

    /// The oldest entry, mutably, alongside the arena its instruction
    /// range resolves in (split borrow: fetch delivery mutates the
    /// entry while reading instructions).
    pub fn front_mut_with_arena(&mut self) -> Option<(&mut FtqEntry, &InstrArena)> {
        (self.len > 0).then(|| (&mut self.entries[self.head], &self.arena))
    }

    /// Pops the oldest entry, releasing its arena range.
    pub fn pop_front(&mut self) -> Option<FtqEntry> {
        if self.len == 0 {
            return None;
        }
        let e = self.entries[self.head];
        self.arena.release_to(e.start + e.len as u64);
        self.head = (self.head + 1) % self.entries.len();
        self.len -= 1;
        if self.len == 0 {
            // Nothing live: rebase the entry ring (cheap tidy; arena
            // positions are absolute and need no rebase).
            self.head = 0;
        }
        Some(e)
    }

    /// Pushes an entry whose instructions are copied into the arena.
    ///
    /// # Panics
    ///
    /// Panics when the ring is full — the BPU checks capacity before
    /// producing.
    pub fn push(&mut self, mut entry: FtqEntry, instrs: &[Instr]) {
        assert!(self.len < self.entries.len(), "FTQ overflow");
        entry.start = self.arena.push_run(instrs);
        entry.len = instrs.len() as u32;
        let slot = self.slot(self.len);
        self.entries[slot] = entry;
        self.len += 1;
    }

    /// Iterates entries oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &FtqEntry> {
        (0..self.len).map(|i| &self.entries[self.slot(i)])
    }

    /// The instruction arena (resolve an entry's `start..start+len`).
    pub fn arena(&self) -> &InstrArena {
        &self.arena
    }
}

impl core::ops::Index<usize> for Ftq {
    type Output = FtqEntry;

    fn index(&self, i: usize) -> &FtqEntry {
        self.get(i)
    }
}

/// Why the BPU is not producing fetch targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BpuState {
    /// Producing normally (possibly delayed until a cycle).
    Running {
        /// Next cycle the BPU may process a run (BTB bubbles push
        /// this out).
        available_at: Cycle,
    },
    /// Waiting for the branch with this global index to resolve.
    WaitingOnBranch {
        /// Global instruction index of the mispredicted branch.
        index: u64,
    },
}

/// Entries in the indirect-target predictor (ITTAGE-flavored:
/// path-history-tagged targets, with the BTB as fallback).
const ITP_ENTRIES: usize = 16384;

#[derive(Clone, Copy, Debug, Default)]
struct ItpEntry {
    tag: u16,
    target: u64,
    valid: bool,
}

/// The decoupled front end.
pub struct FrontEnd {
    /// The Fetch Target Queue.
    pub ftq: Ftq,
    capacity: usize,
    tage: Tage,
    btb: Btb,
    /// Indirect-target predictor: indexed and tagged by branch PC
    /// hashed with recent taken-branch path history, so per-request
    /// dispatch sequences become predictable after their first hop.
    itp: Vec<ItpEntry>,
    path_history: u64,
    /// Address space currently feeding the BPU.
    cur_asid: Asid,
    /// What prediction structures do when the stream switches spaces.
    switch_mode: BranchSwitchMode,
    state: BpuState,
    next_index: u64,
    redirect_penalty: u64,
    btb_miss_penalty: u64,
    stats: BranchStats,
    trace_done: bool,
}

impl FrontEnd {
    /// Builds the front end from the simulation config.
    pub fn new(cfg: &SimConfig) -> Self {
        FrontEnd {
            ftq: Ftq::new(cfg.ftq_entries),
            capacity: cfg.ftq_entries,
            tage: Tage::new(),
            btb: Btb::new(8192, 4),
            itp: vec![ItpEntry::default(); ITP_ENTRIES],
            path_history: 0,
            cur_asid: Asid::HOST,
            switch_mode: cfg.branch_switch,
            state: BpuState::Running { available_at: 0 },
            next_index: 0,
            redirect_penalty: cfg.redirect_penalty,
            btb_miss_penalty: cfg.btb_miss_penalty,
            stats: BranchStats::default(),
            trace_done: false,
        }
    }

    /// Accumulated branch statistics.
    pub fn stats(&self) -> BranchStats {
        let mut s = self.stats;
        s.tage = self.tage.stats();
        s.btb = self.btb.stats();
        s
    }

    /// Whether the trace has been fully consumed and the FTQ drained.
    pub fn drained(&self) -> bool {
        self.trace_done && self.ftq.is_empty()
    }

    /// Whether the front end has consumed the whole trace.
    pub fn trace_done(&self) -> bool {
        self.trace_done
    }

    /// Global index of the next instruction the BPU will assign.
    pub fn instructions_entered(&self) -> u64 {
        self.next_index
    }

    /// The lookup key for branch structures: the raw PC in
    /// [`BranchSwitchMode::Flush`] mode (state never survives a
    /// switch, so keys need no disambiguation), the PC XOR-tagged
    /// with the ASID in [`BranchSwitchMode::Tag`] mode. ASID 0 maps
    /// to the raw PC either way, keeping single-tenant runs
    /// bit-identical.
    fn pc_key(&self, pc: Addr) -> Addr {
        match self.switch_mode {
            BranchSwitchMode::Flush => pc,
            BranchSwitchMode::Tag => {
                Addr::new(pc.raw() ^ ((self.cur_asid.raw() as u64) << ASID_IDENT_SHIFT))
            }
        }
    }

    /// Crosses a context switch: in flush mode every prediction
    /// structure is cleared (untagged hardware); in tag mode the
    /// state survives and future lookups are keyed by the new ASID.
    fn on_context_switch(&mut self, next: Asid) {
        self.cur_asid = next;
        if self.switch_mode == BranchSwitchMode::Flush {
            self.tage.flush();
            self.btb.flush();
            self.itp.fill(ItpEntry::default());
            self.path_history = 0;
        }
    }

    /// Gates statistics recording across the front end's prediction
    /// structures (warmup phase of a sampled simulation): TAGE and
    /// the BTB keep training, but their accuracy counters hold still.
    pub fn set_stats_enabled(&mut self, enabled: bool) {
        self.tage.set_stats_enabled(enabled);
        self.btb.set_stats_enabled(enabled);
    }

    /// Re-opens the fetch stream after a detailed window exhausted
    /// its instruction budget: the feeding closure returned `None`
    /// without the trace being over, so the engine clears the
    /// end-of-trace latch before the next window.
    pub fn resume_stream(&mut self) {
        self.trace_done = false;
    }

    /// Bulk-warmup training of every prediction structure, one
    /// instruction at a time — TAGE direction state plus the BTB and
    /// indirect-target predictor (the front end's large, slowest
    /// tables: a wide code footprint needs on the order of a million
    /// instructions to cover 8192 BTB entries). Equivalent to
    /// [`FrontEnd::train_run`] without run grouping; handles context
    /// switches per the configured switch mode.
    pub fn warm_branches(&mut self, instr: &Instr) {
        let InstrKind::Branch {
            target,
            taken,
            class,
        } = instr.kind
        else {
            return;
        };
        if instr.asid() != self.cur_asid {
            self.on_context_switch(instr.asid());
        }
        let key = self.pc_key(instr.pc());
        match class {
            BranchClass::Conditional => {
                self.tage.predict_and_train(key, taken);
                if taken && self.btb.lookup(key) != Some(target) {
                    self.btb.update(key, target);
                }
            }
            BranchClass::Direct | BranchClass::Call => {
                if self.btb.lookup(key) != Some(target) {
                    self.btb.update(key, target);
                }
            }
            BranchClass::Return => {}
            BranchClass::Indirect => {
                self.itp_update(key, target);
                self.btb.update(key, target);
                self.push_path_history(target);
            }
        }
    }

    /// Warmup-phase training: runs the prediction structures over one
    /// fetch run with no timing — no FTQ entry, no stall modeling, no
    /// global indices. Context switches still flush or re-key state
    /// per the configured switch mode. Call between
    /// [`FrontEnd::set_stats_enabled`]`(false)`/`(true)` so warmup
    /// traffic stays uncounted.
    pub fn train_run(&mut self, run: &RunInstrs) {
        for instr in run.instrs.iter() {
            self.warm_branches(instr);
        }
    }

    /// The backend resolved the branch with global `index` at `done`;
    /// unstall the BPU if it was the one being waited on.
    pub fn on_branch_resolved(&mut self, index: u64, done: Cycle) {
        if self.state == (BpuState::WaitingOnBranch { index }) {
            self.state = BpuState::Running {
                available_at: done + self.redirect_penalty,
            };
        }
    }

    fn itp_slot(&self, pc: acic_types::Addr) -> (usize, u16) {
        use acic_types::hash::{fold, mix2};
        let h = mix2(pc.raw(), self.path_history);
        (fold(h, 14) as usize, fold(h ^ 0x17a6e, 10) as u16)
    }

    fn itp_predict(&self, pc: acic_types::Addr) -> Option<acic_types::Addr> {
        let (slot, tag) = self.itp_slot(pc);
        let e = self.itp[slot];
        (e.valid && e.tag == tag).then(|| acic_types::Addr::new(e.target))
    }

    fn itp_update(&mut self, pc: acic_types::Addr, target: acic_types::Addr) {
        let (slot, tag) = self.itp_slot(pc);
        self.itp[slot] = ItpEntry {
            tag,
            target: target.raw(),
            valid: true,
        };
    }

    fn push_path_history(&mut self, target: acic_types::Addr) {
        // The single most recent indirect target: together with the
        // site PC it identifies the request type without dragging in
        // stale targets from the previous request (an ITTAGE with
        // geometric history lengths would find this length itself).
        self.path_history = acic_types::hash::fold(target.raw() >> 2, 16);
    }

    /// Earliest cycle at which [`FrontEnd::bpu_cycle`] can produce a
    /// fetch target, or `None` when it cannot until some other event
    /// unblocks it (a mispredict resolution, an FTQ pop, or a window
    /// reopening the trace). The event-horizon loop folds this into
    /// its skip computation; the blocked cases all unblock through
    /// dense-cycle events the loop already schedules.
    pub fn bpu_horizon(&self) -> Option<Cycle> {
        match self.state {
            BpuState::Running { available_at }
                if self.ftq.len() < self.capacity && !self.trace_done =>
            {
                Some(available_at)
            }
            _ => None,
        }
    }

    /// Runs the BPU for one cycle: asks `feed` for at most one
    /// fetch-block run (written into `scratch`, whose buffer is reused
    /// across calls — the hot path allocates nothing) and pushes it
    /// into the FTQ. `feed` returning `false` means the stream is over
    /// (trace end or window budget); the front end latches
    /// `trace_done` and the caller disambiguates which.
    pub fn bpu_cycle<F>(&mut self, now: Cycle, scratch: &mut RunInstrs, mut feed: F)
    where
        F: FnMut(&mut RunInstrs) -> bool,
    {
        let BpuState::Running { available_at } = self.state else {
            return;
        };
        if now < available_at || self.ftq.len() >= self.capacity || self.trace_done {
            return;
        }
        if !feed(scratch) {
            self.trace_done = true;
            return;
        }
        let run = scratch;
        if run.asid != self.cur_asid {
            self.on_context_switch(run.asid);
        }

        let first_index = self.next_index;
        self.next_index += run.instrs.len() as u64;
        let mut bubble = 0u64;
        let mut mispredicted_at: Option<u64> = None;

        for (k, instr) in run.instrs.iter().enumerate() {
            let InstrKind::Branch {
                target,
                taken,
                class,
            } = instr.kind
            else {
                continue;
            };
            let index = first_index + k as u64;
            match class {
                BranchClass::Conditional => {
                    let correct = self.tage.predict_and_train(self.pc_key(instr.pc()), taken);
                    if !correct {
                        self.stats.mispredicts += 1;
                        mispredicted_at = Some(index);
                        break;
                    }
                    if taken {
                        // Need the target from the BTB.
                        match self.btb.lookup(self.pc_key(instr.pc())) {
                            Some(t) if t == target => {}
                            _ => {
                                bubble += self.btb_miss_penalty;
                                let key = self.pc_key(instr.pc());
                                self.btb.update(key, target);
                            }
                        }
                    }
                }
                BranchClass::Direct | BranchClass::Call => {
                    match self.btb.lookup(self.pc_key(instr.pc())) {
                        Some(t) if t == target => {}
                        _ => {
                            bubble += self.btb_miss_penalty;
                            let key = self.pc_key(instr.pc());
                            self.btb.update(key, target);
                        }
                    }
                }
                BranchClass::Return => {
                    // Idealized return address stack: always correct.
                }
                BranchClass::Indirect => {
                    let key = self.pc_key(instr.pc());
                    let predicted = self.itp_predict(key).or_else(|| self.btb.lookup(key));
                    match predicted {
                        Some(t) if t == target => {}
                        Some(_) => {
                            // Wrong target: full misprediction.
                            self.btb.record_wrong_target();
                            self.stats.mispredicts += 1;
                            mispredicted_at = Some(index);
                        }
                        None => {
                            // Cold indirect: no target to fetch from.
                            self.stats.mispredicts += 1;
                            mispredicted_at = Some(index);
                        }
                    }
                    self.itp_update(key, target);
                    self.btb.update(key, target);
                    // Push the resolved target into the path history
                    // even on a misprediction (the front end learns the
                    // true path once the branch resolves) — otherwise a
                    // single wrong dispatch would leave every later
                    // site keyed on stale history.
                    self.push_path_history(target);
                    if mispredicted_at.is_some() {
                        break;
                    }
                }
            }
        }

        self.ftq.push(
            FtqEntry {
                block: run.block,
                asid: run.asid,
                first_index,
                prefetchable: bubble == 0 && mispredicted_at.is_none(),
                ..FtqEntry::default()
            },
            &run.instrs,
        );

        self.state = match mispredicted_at {
            Some(index) => BpuState::WaitingOnBranch { index },
            None => BpuState::Running {
                available_at: now + 1 + bubble,
            },
        };
    }
}

impl core::fmt::Debug for FrontEnd {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FrontEnd")
            .field("ftq_len", &self.ftq.len())
            .field("state", &self.state)
            .field("next_index", &self.next_index)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_types::Addr;

    fn run_of(instrs: Vec<Instr>) -> RunInstrs {
        RunInstrs {
            block: instrs[0].pc().block(),
            asid: instrs[0].asid(),
            instrs,
        }
    }

    /// Drives one BPU cycle fed with `run` (`None` = stream over).
    fn cycle(fe: &mut FrontEnd, now: Cycle, run: Option<RunInstrs>) {
        let mut scratch = RunInstrs::scratch();
        fe.bpu_cycle(now, &mut scratch, |out| match &run {
            Some(r) => {
                *out = r.clone();
                true
            }
            None => false,
        });
    }

    #[test]
    fn pushes_runs_until_full() {
        let cfg = SimConfig::default();
        let mut fe = FrontEnd::new(&cfg);
        for now in 0..30u64 {
            cycle(
                &mut fe,
                now,
                Some(run_of(vec![Instr::alu(Addr::new(now * 64))])),
            );
        }
        assert_eq!(fe.ftq.len(), cfg.ftq_entries);
    }

    #[test]
    fn mispredict_stalls_until_resolution() {
        let cfg = SimConfig::default();
        let mut fe = FrontEnd::new(&cfg);
        // An indirect branch with no BTB entry: guaranteed mispredict.
        let br = Instr::branch(Addr::new(0), Addr::new(0x100), true, BranchClass::Indirect);
        cycle(&mut fe, 0, Some(run_of(vec![br])));
        assert_eq!(fe.ftq.len(), 1);
        assert_eq!(fe.bpu_horizon(), None, "stalled BPU reports no horizon");
        // Stalled: further cycles do nothing.
        cycle(&mut fe, 1, Some(run_of(vec![Instr::alu(Addr::new(64))])));
        assert_eq!(fe.ftq.len(), 1);
        // Resolve the branch (global index 0) at cycle 10.
        fe.on_branch_resolved(0, 10);
        assert_eq!(fe.bpu_horizon(), Some(10 + cfg.redirect_penalty));
        cycle(
            &mut fe,
            10 + cfg.redirect_penalty,
            Some(run_of(vec![Instr::alu(Addr::new(64))])),
        );
        assert_eq!(fe.ftq.len(), 2);
    }

    #[test]
    fn trace_end_marks_done() {
        let cfg = SimConfig::default();
        let mut fe = FrontEnd::new(&cfg);
        cycle(&mut fe, 0, None);
        assert!(fe.trace_done());
        assert!(fe.drained());
        assert_eq!(fe.bpu_horizon(), None);
    }

    #[test]
    fn indirect_with_stable_target_learns() {
        let cfg = SimConfig::default();
        let mut fe = FrontEnd::new(&cfg);
        let br = Instr::branch(Addr::new(0), Addr::new(0x100), true, BranchClass::Indirect);
        // First encounter mispredicts; resolve it.
        cycle(&mut fe, 0, Some(run_of(vec![br])));
        fe.on_branch_resolved(0, 5);
        // Second encounter: BTB now has the target; no stall.
        let before = fe.stats().mispredicts;
        cycle(&mut fe, 20, Some(run_of(vec![br])));
        assert_eq!(fe.stats().mispredicts, before);
        assert_eq!(fe.ftq.len(), 2);
    }

    #[test]
    fn train_run_warms_predictors_without_stats() {
        let cfg = SimConfig::default();
        let mut fe = FrontEnd::new(&cfg);
        let br = Instr::branch(Addr::new(0), Addr::new(0x100), true, BranchClass::Indirect);
        fe.set_stats_enabled(false);
        fe.train_run(&run_of(vec![br]));
        fe.set_stats_enabled(true);
        let s = fe.stats();
        assert_eq!(s.mispredicts, 0);
        assert_eq!(s.btb.lookups, 0, "warmup lookups are uncounted");
        // The trained target now predicts: no mispredict, no stall.
        cycle(&mut fe, 0, Some(run_of(vec![br])));
        assert_eq!(fe.stats().mispredicts, 0);
        cycle(&mut fe, 1, Some(run_of(vec![Instr::alu(Addr::new(64))])));
        assert_eq!(fe.ftq.len(), 2, "BPU not stalled");
    }

    #[test]
    fn resume_stream_reopens_after_window_budget() {
        let cfg = SimConfig::default();
        let mut fe = FrontEnd::new(&cfg);
        cycle(&mut fe, 0, None);
        assert!(fe.trace_done());
        fe.resume_stream();
        assert!(!fe.trace_done());
        cycle(&mut fe, 1, Some(run_of(vec![Instr::alu(Addr::new(0))])));
        assert_eq!(fe.ftq.len(), 1);
    }

    #[test]
    fn global_indices_are_contiguous() {
        let cfg = SimConfig::default();
        let mut fe = FrontEnd::new(&cfg);
        cycle(
            &mut fe,
            0,
            Some(run_of(vec![
                Instr::alu(Addr::new(0)),
                Instr::alu(Addr::new(4)),
            ])),
        );
        cycle(&mut fe, 1, Some(run_of(vec![Instr::alu(Addr::new(64))])));
        assert_eq!(fe.ftq[0].first_index, 0);
        assert_eq!(fe.ftq[1].first_index, 2);
        assert_eq!(fe.instructions_entered(), 3);
    }

    #[test]
    fn ftq_entries_resolve_their_instructions_through_the_arena() {
        let cfg = SimConfig::default();
        let mut fe = FrontEnd::new(&cfg);
        cycle(
            &mut fe,
            0,
            Some(run_of(vec![
                Instr::alu(Addr::new(0)),
                Instr::alu(Addr::new(4)),
            ])),
        );
        cycle(&mut fe, 1, Some(run_of(vec![Instr::alu(Addr::new(64))])));
        let e0 = fe.ftq[0];
        assert_eq!(e0.len, 2);
        assert_eq!(fe.ftq.arena().get(e0.start).pc(), Addr::new(0));
        assert_eq!(fe.ftq.arena().get(e0.start + 1).pc(), Addr::new(4));
        let e1 = fe.ftq[1];
        assert_eq!(fe.ftq.arena().get(e1.start).pc(), Addr::new(64));
        // Popping releases the arena range and keeps later entries valid.
        fe.ftq.pop_front();
        assert_eq!(fe.ftq.arena().get(fe.ftq[0].start).pc(), Addr::new(64));
    }

    #[test]
    fn arena_grows_without_invalidating_positions() {
        let mut ftq = Ftq::new(256);
        // Push far more instructions than ARENA_INITIAL while holding
        // entries live so the arena must grow.
        let runs: Vec<Vec<Instr>> = (0..128u64)
            .map(|r| {
                (0..16u64)
                    .map(|k| Instr::alu(Addr::new(r * 64 + k * 4)))
                    .collect()
            })
            .collect();
        for instrs in &runs {
            ftq.push(FtqEntry::default(), instrs);
        }
        for (r, instrs) in runs.iter().enumerate() {
            let e = ftq[r];
            for (k, want) in instrs.iter().enumerate() {
                assert_eq!(ftq.arena().get(e.start + k as u64).pc(), want.pc());
            }
        }
    }

    #[test]
    fn ftq_ring_wraps_across_many_push_pop_cycles() {
        let mut ftq = Ftq::new(4);
        let mut popped = 0u64;
        let mut pushed = 0u64;
        for round in 0..50u64 {
            while ftq.len() < 4 {
                ftq.push(
                    FtqEntry {
                        first_index: pushed,
                        ..FtqEntry::default()
                    },
                    &[Instr::alu(Addr::new(pushed * 4))],
                );
                pushed += 1;
            }
            let take = 1 + (round % 3) as usize;
            for _ in 0..take.min(ftq.len()) {
                let e = ftq.pop_front().unwrap();
                assert_eq!(e.first_index, popped);
                popped += 1;
            }
        }
        // FIFO order held across every wrap.
        assert!(popped > 50);
    }
}

//! The memory hierarchy below the L1i: L1d, unified L2, unified L3,
//! and a bandwidth-limited DRAM channel (Table II).
//!
//! Contents are modeled exactly (LRU set-associative tag stores);
//! timing is modeled as additive hit latencies plus a DRAM channel
//! with a minimum inter-access gap. Outstanding misses are merged and
//! bounded through [`MissTracker`] (the MSHR model).

use crate::config::SimConfig;
use acic_cache::policy::PolicyKind;
use acic_cache::{AccessCtx, CacheGeometry, CacheStats, SetAssocCache};
use acic_types::hash::mix64;
use acic_types::{Addr, Asid, Cycle, TaggedBlock};
use std::collections::HashMap;

/// Sentinel ident marking an unused MSHR slot (unreachable by real
/// identities; see the tag store's encoding argument).
const EMPTY_IDENT: u64 = u64::MAX;

/// MSHR model: merges requests to the same block and bounds the
/// number outstanding.
///
/// The tracker is probed on every data access and every L1i miss, so
/// entries live in a small linear-probed open-addressed table sized to
/// the miss-level parallelism (2x capacity, power of two) instead of a
/// `HashMap`: idents, ASIDs and ready times are parallel flat lanes.
/// Expiry is batched: while the current cycle stays below the earliest
/// outstanding ready time, cleanup is a single compare; once something
/// may have completed, the table is rebuilt from its (at most
/// `capacity`) still-live entries, so probe chains never accumulate
/// tombstones and every probe is bounded by the guaranteed-empty half
/// of the table. The retired `HashMap` implementation survives as
/// [`LegacyMissTracker`] and the two are pinned together by an
/// equivalence proptest (`tests/hot_structs_equivalence.rs`).
///
/// # Examples
///
/// ```
/// use acic_sim::mem::MissTracker;
/// use acic_types::BlockAddr;
///
/// let mut m = MissTracker::new(2);
/// m.insert(BlockAddr::new(1), 100);
/// assert_eq!(m.lookup(BlockAddr::new(1), 50), Some(100));
/// assert!(!m.full(50));
/// m.insert(BlockAddr::new(2), 120);
/// assert!(m.full(50));
/// assert!(!m.full(110)); // entry 1 completed
/// ```
#[derive(Debug)]
pub struct MissTracker {
    capacity: usize,
    /// Probe mask; table length is `mask + 1`.
    mask: usize,
    ids: Vec<u64>,
    asids: Vec<u16>,
    ready: Vec<Cycle>,
    /// Live entries as of the last cleanup cycle.
    live: usize,
    /// The cycle of the most recent cleanup: slots with
    /// `ready <= last_cleanup` are logically removed.
    last_cleanup: Cycle,
    /// Lower bound on the earliest expiry among live entries — while
    /// `now` stays below it, cleanup is a no-op compare.
    earliest_expiry: Cycle,
    /// Reusable survivor scratch for [`MissTracker::expire`] — the
    /// rebuild allocates nothing in steady state.
    scratch: Vec<(u64, u16, Cycle)>,
}

impl MissTracker {
    /// Creates a tracker with `capacity` MSHRs.
    pub fn new(capacity: usize) -> Self {
        let slots = (capacity.max(1) * 2).next_power_of_two();
        MissTracker {
            capacity,
            mask: slots - 1,
            ids: vec![EMPTY_IDENT; slots],
            asids: vec![0; slots],
            ready: vec![0; slots],
            live: 0,
            last_cleanup: 0,
            earliest_expiry: Cycle::MAX,
            scratch: Vec::with_capacity(slots),
        }
    }

    #[inline]
    fn cleanup(&mut self, now: Cycle) {
        self.last_cleanup = now;
        if now < self.earliest_expiry {
            return;
        }
        self.expire(now);
    }

    /// Rebuilds the table from its still-outstanding entries. The
    /// table is a few cache lines, so this beats the per-call
    /// `HashMap::retain` it replaces — and it runs only when
    /// something actually completed, not on every probe.
    fn expire(&mut self, now: Cycle) {
        let n = self.ids.len();
        let mut survivors = std::mem::take(&mut self.scratch);
        survivors.clear();
        let mut earliest = Cycle::MAX;
        for slot in 0..n {
            if self.ids[slot] != EMPTY_IDENT && self.ready[slot] > now {
                survivors.push((self.ids[slot], self.asids[slot], self.ready[slot]));
                earliest = earliest.min(self.ready[slot]);
            }
        }
        self.ids.fill(EMPTY_IDENT);
        self.live = survivors.len();
        self.earliest_expiry = earliest;
        for &(id, asid, ready) in &survivors {
            let mut slot = mix64(id) as usize & self.mask;
            while self.ids[slot] != EMPTY_IDENT {
                slot = (slot + 1) & self.mask;
            }
            self.ids[slot] = id;
            self.asids[slot] = asid;
            self.ready[slot] = ready;
        }
        self.scratch = survivors;
    }

    /// Ready time of an already-outstanding request for `block`.
    #[inline]
    pub fn lookup(&mut self, block: impl Into<TaggedBlock>, now: Cycle) -> Option<Cycle> {
        self.cleanup(now);
        let t = block.into();
        let id = t.ident();
        let asid = t.asid.raw();
        let mut slot = mix64(id) as usize & self.mask;
        // Probe bound: a table briefly saturated by over-capacity
        // inserts (the waits-then-inserts path) has no empty slot to
        // stop at.
        for _ in 0..=self.mask {
            if self.ids[slot] == EMPTY_IDENT {
                return None;
            }
            if self.ids[slot] == id && self.asids[slot] == asid {
                return (self.ready[slot] > now).then_some(self.ready[slot]);
            }
            slot = (slot + 1) & self.mask;
        }
        None
    }

    /// Whether all MSHRs are busy at `now`.
    #[inline]
    pub fn full(&mut self, now: Cycle) -> bool {
        self.cleanup(now);
        self.live >= self.capacity
    }

    /// Earliest completion among outstanding requests (entries present
    /// as of the last cleanup).
    pub fn earliest_ready(&self) -> Option<Cycle> {
        (0..self.ids.len())
            .filter(|&s| self.ids[s] != EMPTY_IDENT && self.ready[s] > self.last_cleanup)
            .map(|s| self.ready[s])
            .min()
    }

    /// Registers an outstanding request.
    pub fn insert(&mut self, block: impl Into<TaggedBlock>, ready: Cycle) {
        let t = block.into();
        let id = t.ident();
        let asid = t.asid.raw();
        let mut slot = mix64(id) as usize & self.mask;
        let mut free = None;
        for _ in 0..=self.mask {
            if self.ids[slot] == EMPTY_IDENT {
                free = Some(slot);
                break;
            }
            if self.ids[slot] == id && self.asids[slot] == asid {
                // Re-insert of a tracked block: refresh in place.
                self.ready[slot] = ready;
                self.earliest_expiry = self.earliest_expiry.min(ready);
                return;
            }
            slot = (slot + 1) & self.mask;
        }
        let Some(slot) = free else {
            // The timing model can insert while nominally full (it
            // schedules the start behind `earliest_ready` instead of
            // retrying): keep at least one empty slot by doubling.
            // Cold path — capacity-bounded drivers never reach it.
            self.grow();
            return self.insert(t, ready);
        };
        self.ids[slot] = id;
        self.asids[slot] = asid;
        self.ready[slot] = ready;
        self.live += 1;
        self.earliest_expiry = self.earliest_expiry.min(ready);
    }

    /// Doubles the table, rehashing every entry (safety valve for
    /// over-capacity insert bursts; see [`MissTracker::insert`]).
    fn grow(&mut self) {
        let ids = std::mem::take(&mut self.ids);
        let asids = std::mem::take(&mut self.asids);
        let ready = std::mem::take(&mut self.ready);
        let slots = (ids.len() * 2).max(2);
        self.mask = slots - 1;
        self.ids = vec![EMPTY_IDENT; slots];
        self.asids = vec![0; slots];
        self.ready = vec![0; slots];
        for i in 0..ids.len() {
            if ids[i] == EMPTY_IDENT {
                continue;
            }
            let mut slot = mix64(ids[i]) as usize & self.mask;
            while self.ids[slot] != EMPTY_IDENT {
                slot = (slot + 1) & self.mask;
            }
            self.ids[slot] = ids[i];
            self.asids[slot] = asids[i];
            self.ready[slot] = ready[i];
        }
    }

    /// Outstanding request count at `now`.
    pub fn occupancy(&mut self, now: Cycle) -> usize {
        self.cleanup(now);
        self.live
    }
}

/// The retired `HashMap`-backed MSHR model, kept as the behavioral
/// reference for [`MissTracker`] (equivalence-pinned by proptest,
/// measured against by the `hot_structs` bench group).
#[derive(Debug)]
pub struct LegacyMissTracker {
    capacity: usize,
    in_flight: HashMap<TaggedBlock, Cycle>,
}

impl LegacyMissTracker {
    /// Creates a tracker with `capacity` MSHRs.
    pub fn new(capacity: usize) -> Self {
        LegacyMissTracker {
            capacity,
            in_flight: HashMap::new(),
        }
    }

    fn cleanup(&mut self, now: Cycle) {
        self.in_flight.retain(|_, &mut ready| ready > now);
    }

    /// Ready time of an already-outstanding request for `block`.
    pub fn lookup(&mut self, block: impl Into<TaggedBlock>, now: Cycle) -> Option<Cycle> {
        self.cleanup(now);
        self.in_flight.get(&block.into()).copied()
    }

    /// Whether all MSHRs are busy at `now`.
    pub fn full(&mut self, now: Cycle) -> bool {
        self.cleanup(now);
        self.in_flight.len() >= self.capacity
    }

    /// Earliest completion among outstanding requests.
    pub fn earliest_ready(&self) -> Option<Cycle> {
        self.in_flight.values().copied().min()
    }

    /// Registers an outstanding request.
    pub fn insert(&mut self, block: impl Into<TaggedBlock>, ready: Cycle) {
        self.in_flight.insert(block.into(), ready);
    }

    /// Outstanding request count at `now`.
    pub fn occupancy(&mut self, now: Cycle) -> usize {
        self.cleanup(now);
        self.in_flight.len()
    }
}

/// The shared hierarchy below L1i.
pub struct MemoryHierarchy {
    l1d: SetAssocCache,
    l1d_mshr: MissTracker,
    l2: SetAssocCache,
    l3: SetAssocCache,
    dram_next_free: Cycle,
    /// Total DRAM accesses (for the energy model).
    pub dram_accesses: u64,
    /// Lines newly installed into the L3 by warmup-phase traffic.
    /// Never reported: the sampled engine reads the rate of change to
    /// decide when the hierarchy has converged and fast-forwarding
    /// becomes safe.
    pub warm_l3_fills: u64,
    seq: u64,
    l1d_hit_latency: u64,
    l2_latency: u64,
    l3_latency: u64,
    dram_latency: u64,
    dram_gap: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from the simulation config.
    pub fn new(cfg: &SimConfig) -> Self {
        let l1d_geom = CacheGeometry::l1d_48k();
        let l2_geom = CacheGeometry::l2_512k();
        let l3_geom = CacheGeometry::l3_2m();
        MemoryHierarchy {
            l1d: SetAssocCache::new(l1d_geom, PolicyKind::Lru.build(l1d_geom)),
            l1d_mshr: MissTracker::new(cfg.l1d_mshrs),
            l2: SetAssocCache::new(l2_geom, PolicyKind::Lru.build(l2_geom)),
            l3: SetAssocCache::new(l3_geom, PolicyKind::Lru.build(l3_geom)),
            dram_next_free: 0,
            dram_accesses: 0,
            warm_l3_fills: 0,
            seq: 0,
            l1d_hit_latency: cfg.l1d_hit_latency,
            l2_latency: cfg.l2_latency,
            l3_latency: cfg.l3_latency,
            dram_latency: cfg.dram_latency,
            dram_gap: cfg.dram_gap,
        }
    }

    fn next_ctx(&mut self, block: TaggedBlock) -> AccessCtx<'static> {
        self.seq += 1;
        AccessCtx::demand_tagged(block, self.seq)
    }

    /// Walks L2 -> L3 -> DRAM for `block`, updating contents, and
    /// returns the added latency beyond the L1 (excluding L1 hit
    /// latency). The unified levels are ASID-tagged too: two tenants'
    /// overlapping VAs occupy distinct L2/L3 lines.
    fn below_l1(&mut self, block: TaggedBlock, now: Cycle) -> u64 {
        let ctx = self.next_ctx(block);
        if self.l2.access(&ctx) {
            return self.l2_latency;
        }
        let ctx3 = self.next_ctx(block);
        if self.l3.access(&ctx3) {
            self.l2.fill(&ctx);
            return self.l2_latency + self.l3_latency;
        }
        // DRAM: single channel with a minimum gap.
        self.dram_accesses += 1;
        let request_at = now + self.l2_latency + self.l3_latency;
        let start = request_at.max(self.dram_next_free);
        self.dram_next_free = start + self.dram_gap;
        self.l3.fill(&ctx3);
        self.l2.fill(&ctx);
        (start - now) + self.dram_latency
    }

    /// Fetches an instruction block that missed the L1i; returns the
    /// absolute cycle at which it arrives.
    pub fn fetch_instr_block(&mut self, block: impl Into<TaggedBlock>, now: Cycle) -> Cycle {
        let block = block.into();
        now + self.below_l1(block, now)
    }

    /// Warmup-phase walk of the unified levels: updates L2/L3
    /// contents (tags, LRU state) like a real miss, but with
    /// statistics gated, no DRAM timing or bandwidth accounting, and
    /// fused probe-or-fill scans ([`SetAssocCache::warm_touch`]).
    #[inline]
    fn warm_below_l1(&mut self, block: TaggedBlock) {
        if !self.l2.warm_touch(block) && !self.l3.warm_touch(block) {
            self.warm_l3_fills += 1;
        }
    }

    /// Warmup-phase instruction fetch: warms L2/L3 contents for an
    /// L1i miss without timing or statistics.
    pub fn warm_instr_block(&mut self, block: impl Into<TaggedBlock>) {
        let block = block.into();
        self.warm_below_l1(block);
    }

    /// Warmup-phase data access: warms L1d/L2/L3 contents without
    /// MSHR or latency modeling; statistics stay gated.
    #[inline]
    pub fn warm_data(&mut self, addr: Addr, asid: Asid) {
        let block = addr.block().with_asid(asid);
        if !self.l1d.warm_touch(block) {
            self.warm_below_l1(block);
        }
    }

    /// Host-side prefetch of every tag/stamp array line the warm walk
    /// for `addr` could touch. Bulk warming issues this a few memory
    /// operations ahead of the matching [`MemoryHierarchy::warm_data`]
    /// so the simulated arrays' host-memory latency overlaps useful
    /// work instead of serializing the walk.
    #[inline]
    pub fn hint_data(&self, addr: Addr, asid: Asid) {
        let block = addr.block().with_asid(asid);
        self.l1d.prefetch_set(block);
        self.l2.prefetch_set(block);
        self.l3.prefetch_set(block);
    }

    /// Performs a data access (load or store) and returns its
    /// completion cycle. Stores complete in one cycle through the
    /// store buffer but still allocate (write-allocate policy).
    pub fn access_data(&mut self, addr: Addr, asid: Asid, now: Cycle, is_store: bool) -> Cycle {
        let block = addr.block().with_asid(asid);
        let ctx = self.next_ctx(block);
        // An in-flight miss wins over a tag hit: the line's tag is
        // installed at allocation but the data arrives at `ready`.
        let done = if let Some(ready) = self.l1d_mshr.lookup(block, now) {
            self.l1d.access(&ctx);
            ready
        } else if self.l1d.access(&ctx) {
            now + self.l1d_hit_latency
        } else {
            let start = if self.l1d_mshr.full(now) {
                self.l1d_mshr
                    .earliest_ready()
                    .expect("full tracker has entries")
                    .max(now)
            } else {
                now
            };
            let ready = start + self.l1d_hit_latency + self.below_l1(block, start);
            self.l1d_mshr.insert(block, ready);
            self.l1d.fill(&ctx);
            ready
        };
        if is_store {
            now + 1
        } else {
            done
        }
    }

    /// L1d statistics.
    pub fn l1d_stats(&self) -> CacheStats {
        *self.l1d.stats()
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> CacheStats {
        *self.l2.stats()
    }

    /// L3 statistics.
    pub fn l3_stats(&self) -> CacheStats {
        *self.l3.stats()
    }
}

impl core::fmt::Debug for MemoryHierarchy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MemoryHierarchy")
            .field("dram_accesses", &self.dram_accesses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_types::BlockAddr;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(&SimConfig::default())
    }

    #[test]
    fn cold_instr_fetch_goes_to_dram() {
        let mut h = hierarchy();
        let ready = h.fetch_instr_block(BlockAddr::new(0x9000), 100);
        assert!(ready >= 100 + 15 + 35 + 220, "ready = {ready}");
        assert_eq!(h.dram_accesses, 1);
    }

    #[test]
    fn second_fetch_hits_l2() {
        let mut h = hierarchy();
        let b = BlockAddr::new(0x9000);
        h.fetch_instr_block(b, 0);
        let ready = h.fetch_instr_block(b, 1000);
        assert_eq!(ready, 1000 + 15);
        assert_eq!(h.dram_accesses, 1);
    }

    #[test]
    fn load_hit_latency() {
        let mut h = hierarchy();
        let a = Addr::new(0x5000_0000);
        let first = h.access_data(a, Asid::HOST, 0, false);
        assert!(first > 5, "cold load should miss");
        let second = h.access_data(a, Asid::HOST, 1000, false);
        assert_eq!(second, 1000 + 5);
    }

    #[test]
    fn store_completes_quickly_even_on_miss() {
        let mut h = hierarchy();
        let done = h.access_data(Addr::new(0x6000_0000), Asid::HOST, 10, true);
        assert_eq!(done, 11);
    }

    #[test]
    fn loads_to_same_block_merge() {
        let mut h = hierarchy();
        let a = Addr::new(0x7000_0000);
        let first = h.access_data(a, Asid::HOST, 0, false);
        let merged = h.access_data(a + 8, Asid::HOST, 1, false);
        assert_eq!(merged, first, "second load merges with the MSHR");
        assert_eq!(h.dram_accesses, 1);
    }

    #[test]
    fn dram_gap_serializes_back_to_back_misses() {
        let mut h = hierarchy();
        let r1 = h.fetch_instr_block(BlockAddr::new(0x10_0000), 0);
        let r2 = h.fetch_instr_block(BlockAddr::new(0x20_0000), 0);
        assert!(r2 >= r1.min(r2), "both complete");
        assert!(r2 > r1 || r1 > r2, "gap separates them");
    }

    #[test]
    fn warming_fills_contents_without_counting() {
        let mut h = hierarchy();
        let b = BlockAddr::new(0x9000);
        h.warm_instr_block(b);
        h.warm_data(Addr::new(0x5000_0000), Asid::HOST);
        assert_eq!(h.dram_accesses, 0, "warmup pays no DRAM accounting");
        assert_eq!(h.l2_stats(), CacheStats::default());
        assert_eq!(h.l3_stats(), CacheStats::default());
        assert_eq!(h.l1d_stats(), CacheStats::default());
        // But the contents are warm: a timed fetch now hits L2.
        let ready = h.fetch_instr_block(b, 1000);
        assert_eq!(ready, 1000 + 15);
        let done = h.access_data(Addr::new(0x5000_0000), Asid::HOST, 1000, false);
        assert_eq!(done, 1000 + 5, "L1d warmed");
    }

    #[test]
    fn mshr_capacity_delays_when_full() {
        let cfg = SimConfig {
            l1d_mshrs: 1,
            ..SimConfig::default()
        };
        let mut h = MemoryHierarchy::new(&cfg);
        let d1 = h.access_data(Addr::new(0x1_0000_0000), Asid::HOST, 0, false);
        let d2 = h.access_data(Addr::new(0x2_0000_0000), Asid::HOST, 0, false);
        assert!(d2 > d1, "second miss waits for a free MSHR");
    }
}

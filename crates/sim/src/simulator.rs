//! The classic simulator entry point, now a thin veneer over the
//! phase-scheduled [`Engine`](crate::Engine).
//!
//! [`Simulator::run`] is API-stable: every pre-engine caller keeps
//! working, and with the default [`SampleSchedule::Full`] schedule the
//! engine reproduces the original cycle loop bit for bit (pinned by
//! `tests/engine_equivalence.rs`). Set
//! [`SimConfig::schedule`](crate::SimConfig) to a periodic schedule to
//! run SMARTS-style sampled simulation through the same entry point.

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::report::SimReport;
use acic_trace::TraceSource;

#[allow(unused_imports)] // referenced by the module docs
use crate::config::SampleSchedule;

/// Entry point for running simulations.
#[derive(Debug)]
pub struct Simulator;

impl Simulator {
    /// Runs `workload` under `cfg` and returns the report.
    ///
    /// Delegates to [`Engine::run`]; see there for phase and
    /// sampling semantics.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds a generous cycle bound
    /// (indicates a pipeline deadlock — a bug, not a workload
    /// property) or the configured schedule is inconsistent.
    pub fn run<W: TraceSource>(cfg: &SimConfig, workload: &W) -> SimReport {
        Engine::run(cfg, workload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PrefetcherKind;
    use crate::icache::IcacheOrg;
    use acic_trace::Instr;
    use acic_types::Addr;
    use acic_workloads::{AppProfile, SyntheticWorkload};

    fn small_workload(n: u64) -> SyntheticWorkload {
        SyntheticWorkload::with_instructions(AppProfile::sibench(), n)
    }

    #[test]
    fn runs_to_completion_and_counts_instructions() {
        let wl = small_workload(20_000);
        let r = Simulator::run(&SimConfig::default(), &wl);
        assert_eq!(r.total_instructions, 20_000);
        assert!(r.total_cycles > 0);
        assert!(r.ipc() > 0.05 && r.ipc() < 6.0, "ipc = {}", r.ipc());
    }

    #[test]
    fn deterministic_across_runs() {
        let wl = small_workload(10_000);
        let a = Simulator::run(&SimConfig::default(), &wl);
        let b = Simulator::run(&SimConfig::default(), &wl);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.l1i.demand_misses, b.l1i.demand_misses);
    }

    #[test]
    fn tiny_trace_with_single_block() {
        // A degenerate workload: straight-line code in one block.
        let instrs: Vec<Instr> = (0..16).map(|i| Instr::alu(Addr::new(i * 4))).collect();
        let trace = acic_trace::VecTrace::with_name(instrs, "tiny");
        let r = Simulator::run(&SimConfig::default(), &trace);
        assert_eq!(r.total_instructions, 16);
        assert_eq!(
            r.l1i.demand_misses + r.l1i.demand_hits(),
            r.l1i.demand_accesses
        );
    }

    #[test]
    fn opt_never_misses_more_than_lru() {
        let wl = small_workload(60_000);
        let base = SimConfig {
            prefetcher: PrefetcherKind::None,
            ..SimConfig::default()
        };
        let lru = Simulator::run(&base, &wl);
        let opt = Simulator::run(&base.with_org(IcacheOrg::Opt), &wl);
        assert!(
            opt.l1i.demand_misses <= lru.l1i.demand_misses,
            "OPT {} vs LRU {}",
            opt.l1i.demand_misses,
            lru.l1i.demand_misses
        );
    }

    #[test]
    fn prefetching_reduces_misses() {
        let wl = small_workload(60_000);
        let none = Simulator::run(
            &SimConfig {
                prefetcher: PrefetcherKind::None,
                ..SimConfig::default()
            },
            &wl,
        );
        let fdp = Simulator::run(&SimConfig::default(), &wl);
        assert!(
            fdp.l1i.demand_misses < none.l1i.demand_misses,
            "FDP {} vs none {}",
            fdp.l1i.demand_misses,
            none.l1i.demand_misses
        );
    }

    #[test]
    fn acic_reports_admission_stats() {
        let wl = SyntheticWorkload::with_instructions(AppProfile::web_search(), 120_000);
        let r = Simulator::run(
            &SimConfig::default().with_org(IcacheOrg::acic_default()),
            &wl,
        );
        let acic = r.acic.expect("ACIC stats present");
        assert!(acic.decisions > 0);
        let cshr = r.cshr.expect("CSHR stats present");
        assert!(cshr.inserted > 0);
    }

    #[test]
    fn warmup_excluded_from_measured_window() {
        let wl = small_workload(20_000);
        let r = Simulator::run(&SimConfig::default(), &wl);
        assert!(r.measured_instructions <= r.total_instructions);
        assert!(r.measured_instructions >= r.total_instructions * 85 / 100);
    }
}

//! The cycle loop tying front end, backend, hierarchy, prefetcher and
//! the L1i organization together.

use crate::backend::{Backend, DecodedInstr};
use crate::config::{PrefetcherKind, SimConfig};
use crate::frontend::FrontEnd;
use crate::mem::{MemoryHierarchy, MissTracker};
use crate::prefetch::{Entangling, Prefetcher};
use crate::report::{PrefetchStats, SimReport};
use acic_cache::{AccessCtx, CacheStats};
use acic_core::AcicIcache;
use acic_trace::{BlockRuns, GroupedRuns, ReuseOracle, TraceSource, NO_NEXT_USE};
use acic_types::{Asid, Cycle, TaggedBlock};

/// Entry point for running simulations.
#[derive(Debug)]
pub struct Simulator;

impl Simulator {
    /// Runs `workload` under `cfg` and returns the report.
    ///
    /// Performs a functional pre-pass when the organization needs the
    /// reuse oracle (OPT, OPT-bypass) or when
    /// [`SimConfig::attach_oracle`] requests instrumentation.
    ///
    /// # Panics
    ///
    /// Panics if the simulation exceeds a generous cycle bound
    /// (indicates a pipeline deadlock — a bug, not a workload
    /// property).
    pub fn run<W: TraceSource>(cfg: &SimConfig, workload: &W) -> SimReport {
        let needs_oracle = cfg.icache_org.needs_oracle() || cfg.attach_oracle;
        let (oracle, total_instructions) = if needs_oracle {
            // The oracle pre-pass has to walk the trace anyway; count
            // instructions while materializing the block sequence.
            let mut total = 0u64;
            let mut seq = Vec::new();
            for r in BlockRuns::new(workload.iter()) {
                // Oracle keys are flattened tagged identities, so
                // tenants' overlapping VAs stay distinct.
                seq.push(r.oracle_key());
                total += r.len as u64;
            }
            (Some(ReuseOracle::from_sequence(&seq)), total)
        } else {
            // No oracle: take the source's exact length when it knows
            // it (synthetic workloads and in-memory traces do), and
            // only fall back to a counting pass for sources that
            // cannot answer without walking. Regenerating a synthetic
            // trace just to count it used to double the cost of every
            // non-oracle simulation.
            let total = workload
                .len_hint()
                .unwrap_or_else(|| workload.iter().count() as u64);
            (None, total)
        };
        let mut cursor = oracle.as_ref().map(|o| o.cursor());

        let mut contents = cfg.icache_org.build(workload.seed());
        if cfg.unbounded_cshr {
            if let crate::icache::IcacheOrg::Acic(acic_cfg) = &cfg.icache_org {
                contents = Box::new(AcicIcache::new(*acic_cfg).with_unbounded_instrumentation());
            }
        }
        let wants_tick = contents.wants_tick();
        let mut frontend = FrontEnd::new(cfg);
        let mut backend = Backend::new(cfg);
        let mut mem = MemoryHierarchy::new(cfg);
        let mut l1i_mshr = MissTracker::new(cfg.l1i_mshrs);
        let mut prefetcher = match cfg.prefetcher {
            PrefetcherKind::None => Prefetcher::None,
            PrefetcherKind::Fdp => Prefetcher::Fdp,
            PrefetcherKind::Entangling => Prefetcher::Entangling(Entangling::new()),
        };
        let mut prefetch_stats = PrefetchStats::default();
        let mut pending_prefetches: Vec<(Cycle, TaggedBlock)> = Vec::new();
        let mut candidates: Vec<TaggedBlock> = Vec::new();
        let mut fetch_asid = Asid::HOST;
        let mut context_switches = 0u64;

        let mut runs = GroupedRuns::new(workload.iter());
        let warmup_instrs = (total_instructions as f64 * cfg.warmup_fraction) as u64;
        let mut warm_snapshot: Option<(Cycle, u64, CacheStats)> = None;
        let mut access_index: u64 = 0;

        let max_cycles = 400 * total_instructions + 1_000_000;
        let mut now: Cycle = 0;

        loop {
            now += 1;
            assert!(
                now < max_cycles,
                "simulation exceeded cycle bound (deadlock?)"
            );

            // Backend: retire, then dispatch.
            backend.retire(now);
            backend.dispatch(now, &mut mem);
            for (index, done) in backend.resolved_branches.drain(..) {
                frontend.on_branch_resolved(index, done);
            }

            // Fetch: service the FTQ head.
            if let Some(head) = frontend.ftq.front_mut() {
                if !head.accessed {
                    head.accessed = true;
                    access_index += 1;
                    let tagged = head.block.with_asid(head.asid);
                    // The fetch stream crossed into another address
                    // space: tell the contents model (flush-on-switch
                    // organizations gut themselves here).
                    if head.asid != fetch_asid {
                        fetch_asid = head.asid;
                        context_switches += 1;
                        contents.on_context_switch(head.asid);
                    }
                    let next_use = match cursor.as_mut() {
                        Some(c) => {
                            c.advance(tagged.oracle_key());
                            c.next_use_of(tagged.oracle_key())
                        }
                        None => NO_NEXT_USE,
                    };
                    head.next_use = next_use;
                    let outcome = {
                        let mut ctx =
                            AccessCtx::demand_tagged(tagged, access_index).with_next_use(next_use);
                        if let Some(c) = cursor.as_ref() {
                            ctx = ctx.with_oracle(c);
                        }
                        contents.access(&ctx)
                    };
                    prefetcher.on_demand_fetch(tagged, now);
                    if outcome.hit {
                        head.ready_at = now + outcome.extra_latency as u64;
                    } else {
                        head.needs_fill = true;
                        head.ready_at = match l1i_mshr.lookup(tagged, now) {
                            // A prefetch already has the block in flight.
                            Some(ready) => ready,
                            None => {
                                let start = if l1i_mshr.full(now) {
                                    l1i_mshr
                                        .earliest_ready()
                                        .expect("full tracker has entries")
                                        .max(now)
                                } else {
                                    now
                                };
                                let ready = mem.fetch_instr_block(tagged, start);
                                l1i_mshr.insert(tagged, ready);
                                prefetcher.on_demand_miss(tagged, now, ready - now);
                                ready
                            }
                        };
                    }
                }
                if now >= head.ready_at {
                    if head.needs_fill {
                        head.needs_fill = false;
                        let mut ctx =
                            AccessCtx::demand_tagged(head.block.with_asid(head.asid), access_index)
                                .with_next_use(head.next_use);
                        if let Some(c) = cursor.as_ref() {
                            ctx = ctx.with_oracle(c);
                        }
                        contents.fill(&ctx);
                    }
                    // Deliver instructions into the decode queue.
                    let space = backend.dq_space();
                    let remaining = head.instrs.len() - head.delivered;
                    let n = remaining.min(space).min(cfg.fetch_width as usize);
                    for k in 0..n {
                        let at = head.delivered + k;
                        backend.dq.push_back(DecodedInstr {
                            instr: head.instrs[at],
                            index: head.first_index + at as u64,
                        });
                    }
                    head.delivered += n;
                    if head.delivered == head.instrs.len() {
                        frontend.ftq.pop_front();
                    }
                }
            }

            // BPU: run ahead of fetch.
            frontend.bpu_cycle(now, || runs.next());

            // Prefetch: gather candidates, filter, issue, fill.
            candidates.clear();
            prefetcher.candidates(&frontend.ftq, &mut candidates);
            let mut issued = 0;
            for &block in candidates.iter() {
                if issued >= cfg.prefetch_width {
                    break;
                }
                // Never prefetch into an address space the core has
                // not switched to yet: its translations are not
                // active, and for flush-on-switch organizations the
                // lines would be installed only to be flushed the
                // moment the switch is crossed. (No-op single-tenant:
                // every candidate carries the host ASID.)
                if block.asid != fetch_asid {
                    prefetch_stats.filtered += 1;
                    continue;
                }
                if contents.contains_block(block) || l1i_mshr.lookup(block, now).is_some() {
                    prefetch_stats.filtered += 1;
                    continue;
                }
                if l1i_mshr.full(now) {
                    prefetch_stats.filtered += 1;
                    break;
                }
                let ready = mem.fetch_instr_block(block, now);
                l1i_mshr.insert(block, ready);
                pending_prefetches.push((ready, block));
                prefetch_stats.issued += 1;
                issued += 1;
            }
            if !pending_prefetches.is_empty() {
                let due: Vec<TaggedBlock> = {
                    let mut v = Vec::new();
                    pending_prefetches.retain(|&(ready, block)| {
                        if ready <= now {
                            v.push(block);
                            false
                        } else {
                            true
                        }
                    });
                    v
                };
                for block in due {
                    let future = cursor
                        .as_ref()
                        .map_or(NO_NEXT_USE, |c| c.future_use_of(block.oracle_key()));
                    let mut ctx = AccessCtx::prefetch(block.block, access_index)
                        .with_asid(block.asid)
                        .with_next_use(future);
                    if let Some(c) = cursor.as_ref() {
                        ctx = ctx.with_oracle(c);
                    }
                    contents.fill(&ctx);
                }
            }

            if wants_tick {
                contents.tick(now);
            }

            // Warm-up snapshot.
            if warm_snapshot.is_none() && backend.retired >= warmup_instrs {
                warm_snapshot = Some((now, backend.retired, contents.stats()));
            }

            if frontend.drained() && backend.drained() {
                break;
            }
        }

        let (warm_cycle, warm_retired, warm_l1i) =
            warm_snapshot.unwrap_or((0, 0, CacheStats::default()));
        let acic = contents
            .as_any()
            .downcast_ref::<AcicIcache>()
            .map(|a| *a.acic_stats());
        let cshr = contents
            .as_any()
            .downcast_ref::<AcicIcache>()
            .map(|a| a.cshr_stats());
        let cshr_lifetimes = contents
            .as_any()
            .downcast_ref::<AcicIcache>()
            .and_then(|a| a.unbounded_cshr())
            .map(|u| u.fractions_with_unresolved());

        SimReport {
            app: workload.name().to_string(),
            org: cfg.icache_org.label().to_string(),
            total_instructions: backend.retired,
            total_cycles: now,
            measured_instructions: backend.retired - warm_retired,
            measured_cycles: now - warm_cycle,
            l1i: contents.stats().delta_from(&warm_l1i),
            l1d: mem.l1d_stats(),
            l2: mem.l2_stats(),
            l3: mem.l3_stats(),
            dram_accesses: mem.dram_accesses,
            branch: frontend.stats(),
            prefetch: prefetch_stats,
            context_switches,
            acic,
            cshr,
            cshr_lifetimes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icache::IcacheOrg;
    use acic_trace::Instr;
    use acic_types::Addr;
    use acic_workloads::{AppProfile, SyntheticWorkload};

    fn small_workload(n: u64) -> SyntheticWorkload {
        SyntheticWorkload::with_instructions(AppProfile::sibench(), n)
    }

    #[test]
    fn runs_to_completion_and_counts_instructions() {
        let wl = small_workload(20_000);
        let r = Simulator::run(&SimConfig::default(), &wl);
        assert_eq!(r.total_instructions, 20_000);
        assert!(r.total_cycles > 0);
        assert!(r.ipc() > 0.05 && r.ipc() < 6.0, "ipc = {}", r.ipc());
    }

    #[test]
    fn deterministic_across_runs() {
        let wl = small_workload(10_000);
        let a = Simulator::run(&SimConfig::default(), &wl);
        let b = Simulator::run(&SimConfig::default(), &wl);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.l1i.demand_misses, b.l1i.demand_misses);
    }

    #[test]
    fn tiny_trace_with_single_block() {
        // A degenerate workload: straight-line code in one block.
        let instrs: Vec<Instr> = (0..16).map(|i| Instr::alu(Addr::new(i * 4))).collect();
        let trace = acic_trace::VecTrace::with_name(instrs, "tiny");
        let r = Simulator::run(&SimConfig::default(), &trace);
        assert_eq!(r.total_instructions, 16);
        assert_eq!(
            r.l1i.demand_misses + r.l1i.demand_hits(),
            r.l1i.demand_accesses
        );
    }

    #[test]
    fn opt_never_misses_more_than_lru() {
        let wl = small_workload(60_000);
        let base = SimConfig {
            prefetcher: PrefetcherKind::None,
            ..SimConfig::default()
        };
        let lru = Simulator::run(&base, &wl);
        let opt = Simulator::run(&base.with_org(IcacheOrg::Opt), &wl);
        assert!(
            opt.l1i.demand_misses <= lru.l1i.demand_misses,
            "OPT {} vs LRU {}",
            opt.l1i.demand_misses,
            lru.l1i.demand_misses
        );
    }

    #[test]
    fn prefetching_reduces_misses() {
        let wl = small_workload(60_000);
        let none = Simulator::run(
            &SimConfig {
                prefetcher: PrefetcherKind::None,
                ..SimConfig::default()
            },
            &wl,
        );
        let fdp = Simulator::run(&SimConfig::default(), &wl);
        assert!(
            fdp.l1i.demand_misses < none.l1i.demand_misses,
            "FDP {} vs none {}",
            fdp.l1i.demand_misses,
            none.l1i.demand_misses
        );
    }

    #[test]
    fn acic_reports_admission_stats() {
        let wl = SyntheticWorkload::with_instructions(AppProfile::web_search(), 120_000);
        let r = Simulator::run(
            &SimConfig::default().with_org(IcacheOrg::acic_default()),
            &wl,
        );
        let acic = r.acic.expect("ACIC stats present");
        assert!(acic.decisions > 0);
        let cshr = r.cshr.expect("CSHR stats present");
        assert!(cshr.inserted > 0);
    }

    #[test]
    fn warmup_excluded_from_measured_window() {
        let wl = small_workload(20_000);
        let r = Simulator::run(&SimConfig::default(), &wl);
        assert!(r.measured_instructions <= r.total_instructions);
        assert!(r.measured_instructions >= r.total_instructions * 85 / 100);
    }
}

//! Window-parallel sampled execution: fan the detailed windows of one
//! trace across cores.
//!
//! The serial [`Engine::run`] schedule threads one persistent
//! [`WindowCheckpoint`] through every phase, so windows inherit warm
//! caches from the whole prefix. That coupling is what serializes a
//! 100M-instruction cell onto one core. This module breaks it with the
//! classic time-parallel recipe — redundant functional warming: a
//! [`WindowPlan`] derives every detailed window's position from the
//! [`SampleSchedule`] up front (the same midpoint/clamp arithmetic as
//! the serial cursor walk), then each window runs on a *private* fresh
//! checkpoint that **replays the serial schedule's phase structure up
//! to its own interior** — same initial warmup, same gated
//! fast-forward-or-warm gaps, same per-window warmup, with every
//! *prior* interior demoted from detailed to functional warmup
//! ([`WarmPolicy::MirrorSerial`]). Windows are independent by
//! construction, so any number of workers — including one — executes
//! the identical per-window computation, and the reducer pools samples
//! in canonical window order. Pooled `SampledStats` are therefore
//! **bit-identical across worker counts**; fidelity against the
//! full-detail reference is a separate contract, enforced at the same
//! 2% IPC gate as the serial sampler (see `tests/sampled_sim.rs`).
//!
//! Mirroring the serial phase structure is not an accident of caution
//! — it is the measured sweet spot between two failure modes, both
//! driven by L3 content, which accrues over the *entire* prefix.
//! Truncating the warm reach to a constant starves interiors of
//! resident blocks the serial reference would have hit: on the 20M
//! web-search cell a 2M reach costs 37% pooled-IPC error and even 6M
//! still costs 4.5% (the required reach scales with trace length, so
//! no constant passes the gate). Warming the whole prefix
//! *unconditionally* overshoots the other way (+2.6% IPC on the same
//! cell): demand-only functional warming leaves the caches cleaner
//! than real detailed execution, whose prefetch traffic and skipped
//! fast-forward gaps the serial sampler faithfully carries. Replaying
//! the serial structure reproduces serial state evolution — including
//! its convergence-gated skips — so the windowed estimate lands where
//! the serial one does. Per-window replay cost is the initial warmup
//! plus one warmup+interior per prior period (converged gaps skip in
//! O(1)); cost grows with window position, so the pool hands windows
//! out longest-first (LPT) to keep tail windows from straggling.
//! Callers who want constant per-window cost can plan a bounded reach
//! explicitly via [`WindowPlan::with_warm_reach`] and run it through
//! [`Engine::run_windowed_with`], trading fidelity for wall clock.
//!
//! Organizations that need the reuse oracle (OPT, OPT-bypass,
//! accuracy-instrumented ACIC) get a cursor pre-seeked to their
//! window's first block access ([`ReuseOracle::cursor_at`]): the
//! planner's pre-pass records, for every window, the index of the
//! block run containing `warm_start`, so workers resume oracle queries
//! mid-sequence without replaying the prefix.

use super::{Engine, Phase, TimingLoop, WindowCheckpoint, WindowSample};
use crate::config::{SampleSchedule, SimConfig};
use crate::report::{BranchStats, PrefetchStats, SimReport};
use acic_cache::CacheStats;
use acic_core::{AcicIcache, AcicStats, CshrStats};
use acic_trace::{BlockRuns, GroupedRuns, ReuseOracle, TraceSource};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// One planned detailed window: where its warmup starts, where the
/// measured interior starts, and how long the interior is. All
/// positions are instruction indices from the start of the trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannedWindow {
    /// Canonical window number (reduction order).
    pub index: usize,
    /// First instruction of functional warming: 0 in default
    /// full-prefix plans, `detailed_start - warmup - reach` (clamped
    /// at 0) in bounded-reach plans.
    pub warm_start: u64,
    /// First instruction of the detailed interior.
    pub detailed_start: u64,
    /// Interior length (truncated at end-of-trace).
    pub detailed_len: u64,
}

/// How each window's private checkpoint reaches warmth before its
/// detailed interior. Part of the plan — fixed before any window runs
/// — so the per-window computation never depends on execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarmPolicy {
    /// Replay the serial schedule's phase structure from instruction 0
    /// up to the window, demoting prior detailed interiors to
    /// functional warmup. Reproduces serial state evolution (the
    /// fidelity default; see the module docs for the measurements).
    MirrorSerial,
    /// Skip straight to the window's `warm_start` and warm only the
    /// bounded reach. Constant per-window cost, measured fidelity loss
    /// that grows with trace length — for throughput screening.
    BoundedReach,
}

/// The full window schedule for one trace: every window's bounds,
/// derived once, identically for any worker count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WindowPlan {
    /// Population size the pooled estimators extrapolate to.
    pub total_instructions: u64,
    /// Windows in canonical (trace) order.
    pub windows: Vec<PlannedWindow>,
    /// Warm policy every window applies.
    pub warm: WarmPolicy,
}

impl WindowPlan {
    /// Derives the window schedule for a `total`-instruction trace
    /// under [`WarmPolicy::MirrorSerial`] — the fidelity-preserving
    /// default (see the module docs for why both truncated reaches and
    /// unconditional full-prefix warming fail the 2% gate).
    ///
    /// The detailed-interior positions mirror the serial cursor walk:
    /// an initial warm-up region of `total * warmup_fraction` is never
    /// measured, the first period is halved so windows land at period
    /// midpoints, and the per-period fast-forward is clamped so a
    /// final warmup+detailed window still fits before end-of-trace
    /// (`ff = min(ff_len, remaining - warmup - detailed)`). A final
    /// interior that would cross end-of-trace is truncated to it.
    ///
    /// Returns `None` for [`SampleSchedule::Full`] and for traces too
    /// short to fit the initial warmup plus one warmup+detailed window
    /// — exactly the cases the serial engine degenerates to full
    /// detail, so callers fall back to [`Engine::run`].
    pub fn for_trace(
        total: u64,
        schedule: SampleSchedule,
        warmup_fraction: f64,
    ) -> Option<WindowPlan> {
        Self::with_warm_reach(total, schedule, warmup_fraction, None)
    }

    /// [`WindowPlan::for_trace`] with an explicit warm-reach policy.
    ///
    /// `Some(reach)` plans [`WarmPolicy::BoundedReach`]: a window's
    /// warmup starts `warmup_len + reach` before its interior
    /// (half-warmup for the first window, like the serial schedule),
    /// clamped at instruction 0 via saturating arithmetic, and the
    /// skipped prefix goes through the source's O(1) skip path.
    /// Per-window cost becomes independent of trace position, at a
    /// measured fidelity cost that grows with trace length — for
    /// throughput screening, not publication-grade numbers. `None`
    /// plans [`WarmPolicy::MirrorSerial`], the only policy that holds
    /// the 2% fidelity gate on long traces.
    pub fn with_warm_reach(
        total: u64,
        schedule: SampleSchedule,
        warmup_fraction: f64,
        reach: Option<u64>,
    ) -> Option<WindowPlan> {
        let SampleSchedule::Periodic {
            period,
            warmup_len,
            detailed_len,
        } = schedule
        else {
            return None;
        };
        let initial_warmup = (total as f64 * warmup_fraction) as u64;
        if total <= initial_warmup + warmup_len + detailed_len {
            return None;
        }
        let ff_len = period - warmup_len - detailed_len;
        let mut windows = Vec::new();
        let mut pos = initial_warmup;
        let mut first = true;
        while pos < total {
            let remaining = total - pos;
            let (ff_want, warm_want) = if first {
                first = false;
                (ff_len / 2, warmup_len / 2)
            } else {
                (ff_len, warmup_len)
            };
            let ff = ff_want.min(remaining.saturating_sub(warm_want + detailed_len));
            let detailed_start = pos + ff + warm_want;
            if detailed_start >= total {
                break;
            }
            let warm_start = match reach {
                None => 0,
                Some(r) => detailed_start.saturating_sub(warm_want.saturating_add(r)),
            };
            windows.push(PlannedWindow {
                index: windows.len(),
                warm_start,
                detailed_start,
                detailed_len: detailed_len.min(total - detailed_start),
            });
            pos = detailed_start + detailed_len.min(total - detailed_start);
        }
        if windows.is_empty() {
            return None;
        }
        Some(WindowPlan {
            total_instructions: total,
            windows,
            warm: match reach {
                None => WarmPolicy::MirrorSerial,
                Some(_) => WarmPolicy::BoundedReach,
            },
        })
    }
}

/// Everything one window's worker hands back to the reducer: the
/// measured sample plus every additive statistic the report carries.
/// Plain counters only — `Send` across the worker channel, merged in
/// canonical window order.
struct WindowOutcome {
    sample: Option<WindowSample>,
    l1i: CacheStats,
    l1d: CacheStats,
    l2: CacheStats,
    l3: CacheStats,
    dram_accesses: u64,
    branch: BranchStats,
    prefetch: PrefetchStats,
    context_switches: u64,
    warmed: u64,
    fastforwarded: u64,
    t_ff: f64,
    t_warm: f64,
    t_detail: f64,
    acic: Option<AcicStats>,
    cshr: Option<CshrStats>,
}

/// Distills one window's finished checkpoint into a [`WindowOutcome`].
fn finish_window(state: WindowCheckpoint<'_>, sample: Option<WindowSample>) -> WindowOutcome {
    let acic = state
        .contents
        .as_any()
        .downcast_ref::<AcicIcache>()
        .map(|a| *a.acic_stats());
    let cshr = state
        .contents
        .as_any()
        .downcast_ref::<AcicIcache>()
        .map(|a| a.cshr_stats());
    WindowOutcome {
        sample,
        l1i: state.contents.stats(),
        l1d: state.mem.l1d_stats(),
        l2: state.mem.l2_stats(),
        l3: state.mem.l3_stats(),
        dram_accesses: state.mem.dram_accesses,
        branch: state.frontend.stats(),
        prefetch: state.prefetch_stats,
        context_switches: state.context_switches,
        warmed: state.warmed,
        fastforwarded: state.fastforwarded,
        t_ff: state.t_ff,
        t_warm: state.t_warm,
        t_detail: state.t_detail,
        acic,
        cshr,
    }
}

/// Runs one planned window under [`WarmPolicy::MirrorSerial`]: a
/// private fresh checkpoint replays the serial schedule's phase
/// structure from instruction 0 — initial warmup, then per period the
/// same convergence-gated fast-forward-or-warm and warmup segments as
/// [`Engine::run`] — with every interior before this window's demoted
/// from detailed to functional warmup, and this window's run at
/// detailed fidelity. This function is the unit of determinism: it
/// depends only on `(cfg, workload, window, oracle)`, never on which
/// worker runs it or what ran before it.
///
/// The convergence gate sees warm traffic where the serial engine saw
/// detailed traffic for prior interiors (22k instructions against a
/// ~700k-instruction period), a deliberate approximation: gate
/// decisions shift serial-vs-windowed fidelity, never worker-count
/// determinism, because the replay is identical for every worker.
fn run_window_mirror<W: TraceSource>(
    cfg: &SimConfig,
    workload: &W,
    w: &PlannedWindow,
    total: u64,
    oracle: Option<&ReuseOracle>,
    timing_loop: TimingLoop,
) -> WindowOutcome {
    let SampleSchedule::Periodic {
        period,
        warmup_len,
        detailed_len,
    } = cfg.schedule
    else {
        unreachable!("mirror windows exist only for periodic schedules");
    };
    let mut state = WindowCheckpoint::fresh(cfg, workload.seed(), total, timing_loop);
    state.cursor = oracle.map(|o| o.cursor());
    let mut runs = GroupedRuns::new(workload.iter());
    let initial_warmup = (total as f64 * cfg.warmup_fraction) as u64;
    state.segment(Phase::Warmup, &mut runs, initial_warmup, cfg, W::skip);
    let ff_len = period - warmup_len - detailed_len;
    let mut first_period = true;
    let mut converged = false;
    let mut last_l3_fills = state.mem.warm_l3_fills;
    let mut last_warmed = state.warmed;
    let mut sample = None;
    let mut window_index = 0usize;
    while !state.trace_over && state.consumed < total {
        let remaining = total - state.consumed;
        let (ff_want, warmup) = if first_period {
            first_period = false;
            (ff_len / 2, warmup_len / 2)
        } else {
            (ff_len, warmup_len)
        };
        let ff = ff_want.min(remaining.saturating_sub(warmup + detailed_len));
        if converged && ff > 0 {
            state.segment(Phase::FastForward, &mut runs, ff, cfg, W::skip);
            if state.trace_over {
                break;
            }
            state.segment(Phase::Warmup, &mut runs, warmup, cfg, W::skip);
        } else {
            state.segment(Phase::Warmup, &mut runs, ff + warmup, cfg, W::skip);
        }
        if state.trace_over {
            break;
        }
        if window_index == w.index {
            // Warmup segments consume whole block runs, so the walk
            // lands at or a few instructions past the plan's idealized
            // arithmetic — never before it, and never a period away
            // (that would mean this replay measures the wrong window).
            debug_assert!(
                state.consumed >= w.detailed_start && state.consumed - w.detailed_start < period,
                "replay drifted from the plan: consumed {} vs planned start {}",
                state.consumed,
                w.detailed_start
            );
            sample = state.segment(Phase::Detailed, &mut runs, w.detailed_len, cfg, W::skip);
            break;
        }
        // A prior window's interior: warmed, not measured — deep state
        // keeps evolving as in the serial walk.
        state.segment(
            Phase::Warmup,
            &mut runs,
            detailed_len.min(total - state.consumed),
            cfg,
            W::skip,
        );
        window_index += 1;
        let fills = state.mem.warm_l3_fills - last_l3_fills;
        let warmed = state.warmed - last_warmed;
        last_l3_fills = state.mem.warm_l3_fills;
        last_warmed = state.warmed;
        converged = warmed > 0 && fills * 1_000_000 < warmed * super::L3_CONVERGED_FILLS_PER_MI;
    }
    finish_window(state, sample)
}

/// Runs one planned window under [`WarmPolicy::BoundedReach`]: skip
/// straight to `warm_start` via the source's zero-copy O(1) skip path,
/// warm the bounded reach, measure the interior. Deterministic for the
/// same reason as [`run_window_mirror`].
fn run_window_bounded<W: TraceSource>(
    cfg: &SimConfig,
    workload: &W,
    w: &PlannedWindow,
    total: u64,
    oracle: Option<&ReuseOracle>,
    cursor_starts: Option<&[u64]>,
    timing_loop: TimingLoop,
) -> WindowOutcome {
    let mut state = WindowCheckpoint::fresh(cfg, workload.seed(), total, timing_loop);
    if let (Some(o), Some(starts)) = (oracle, cursor_starts) {
        state.cursor = Some(o.cursor_at(starts[w.index]));
    }
    let mut runs = GroupedRuns::new(workload.iter());
    let skipped = runs.skip_instrs_with(w.warm_start, W::skip);
    state.consumed += skipped;
    state.fastforwarded += skipped;
    if skipped < w.warm_start {
        state.trace_over = true;
    }
    if !state.trace_over {
        state.segment(
            Phase::Warmup,
            &mut runs,
            w.detailed_start - w.warm_start,
            cfg,
            W::skip,
        );
    }
    let sample = if state.trace_over {
        None
    } else {
        state.segment(Phase::Detailed, &mut runs, w.detailed_len, cfg, W::skip)
    };
    finish_window(state, sample)
}

/// Pools per-window outcomes — in canonical window order — into one
/// [`SimReport`], using the same [`super::pool_windows`] estimators as
/// the serial schedule. The reduction is a fold over an index-ordered
/// slice of pure counters, so it is deterministic regardless of which
/// worker produced which outcome when.
fn reduce(cfg: &SimConfig, app: &str, plan: &WindowPlan, outcomes: &[WindowOutcome]) -> SimReport {
    let windows: Vec<WindowSample> = outcomes.iter().filter_map(|o| o.sample).collect();
    let mut l1i = CacheStats::default();
    let mut l1d = CacheStats::default();
    let mut l2 = CacheStats::default();
    let mut l3 = CacheStats::default();
    let mut branch = BranchStats::default();
    let mut prefetch = PrefetchStats::default();
    let mut dram_accesses = 0u64;
    let mut context_switches = 0u64;
    let mut warmed = 0u64;
    let mut fastforwarded = 0u64;
    let mut acic: Option<AcicStats> = None;
    let mut cshr: Option<CshrStats> = None;
    for o in outcomes {
        l1i.merge(&o.l1i);
        l1d.merge(&o.l1d);
        l2.merge(&o.l2);
        l3.merge(&o.l3);
        branch.merge(&o.branch);
        prefetch.merge(&o.prefetch);
        dram_accesses += o.dram_accesses;
        context_switches += o.context_switches;
        warmed += o.warmed;
        fastforwarded += o.fastforwarded;
        if let Some(a) = &o.acic {
            acic.get_or_insert_with(AcicStats::default).merge(a);
        }
        if let Some(c) = &o.cshr {
            cshr.get_or_insert_with(CshrStats::default).merge(c);
        }
    }
    let (est_total_cycles, detailed_instructions, detailed_cycles, stats, window_ipc, window_mpki) =
        super::pool_windows(&windows, plan.total_instructions, warmed, fastforwarded);
    if std::env::var_os("ACIC_ENGINE_DEBUG").is_some() {
        for (i, w) in windows.iter().enumerate() {
            eprintln!(
                "window {i}: instrs={} cycles={} ipc={:.3} mpki={:.3}",
                w.instructions,
                w.cycles,
                w.instructions as f64 / w.cycles as f64,
                w.full_demand_misses as f64 * 1000.0 / w.full_instructions.max(1) as f64
            );
        }
    }
    if std::env::var_os("ACIC_PHASE_TIMES").is_some() {
        let (t_ff, t_warm, t_detail) = outcomes.iter().fold((0.0, 0.0, 0.0), |acc, o| {
            (acc.0 + o.t_ff, acc.1 + o.t_warm, acc.2 + o.t_detail)
        });
        eprintln!(
            "window-parallel phase times (cpu-summed): ff={t_ff:.3}s warm={t_warm:.3}s \
             detailed={t_detail:.3}s (ff {fastforwarded} instrs, warmed {warmed}, windows {})",
            windows.len()
        );
    }
    SimReport {
        app: app.to_string(),
        org: cfg.icache_org.label().to_string(),
        total_instructions: plan.total_instructions,
        total_cycles: est_total_cycles.round() as u64,
        measured_instructions: detailed_instructions,
        measured_cycles: detailed_cycles,
        l1i,
        l1d,
        l2,
        l3,
        dram_accesses,
        branch,
        prefetch,
        context_switches,
        acic,
        cshr,
        // Lifetime instrumentation needs one unbounded CSHR observing
        // the whole trace; per-window instances cannot pool it. The
        // field is None in windowed mode for every worker count.
        cshr_lifetimes: None,
        sampled: Some(stats),
        window_ipc,
        window_mpki,
    }
}

impl Engine {
    /// Runs `workload` under `cfg` with the window-parallel schedule,
    /// fanning detailed windows across `workers` threads (0 and 1 both
    /// mean in-order execution on the calling thread — of the *same*
    /// per-window computation, which is what makes worker count
    /// unobservable in the output).
    ///
    /// Full schedules and traces too short to sample fall back to
    /// [`Engine::run`] (they have no windows to parallelize and the
    /// serial engine is already exact there).
    ///
    /// # Determinism
    ///
    /// The returned report is bit-identical for every `workers` value:
    /// the plan is derived before any window runs, each window's
    /// computation depends only on the plan entry (fresh checkpoint,
    /// private trace pass, pre-seeked oracle cursor), and the reducer
    /// folds outcomes in canonical window order.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is inconsistent
    /// ([`SampleSchedule::validate`]) or a worker thread panics.
    pub fn run_windowed<W: TraceSource + Sync>(
        cfg: &SimConfig,
        workload: &W,
        workers: usize,
    ) -> SimReport {
        Self::run_windowed_inner(cfg, workload, workers, None, TimingLoop::from_env())
    }

    /// [`Engine::run_windowed`] with an explicit [`TimingLoop`]
    /// selection — the windowed leg of the dense-vs-event equivalence
    /// suites.
    pub fn run_windowed_with_loop<W: TraceSource + Sync>(
        cfg: &SimConfig,
        workload: &W,
        workers: usize,
        timing_loop: TimingLoop,
    ) -> SimReport {
        Self::run_windowed_inner(cfg, workload, workers, None, timing_loop)
    }

    /// [`Engine::run_windowed`] with a caller-supplied [`WindowPlan`]
    /// — e.g. a bounded-reach plan from
    /// [`WindowPlan::with_warm_reach`]. The plan's
    /// `total_instructions` must match the workload's actual length
    /// (the pooled estimators extrapolate to it).
    ///
    /// The worker-count determinism guarantee is unchanged: it holds
    /// for *any* fixed plan, because each window still runs on a
    /// private fresh checkpoint and the reducer folds in canonical
    /// window order.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent schedule, a plan/trace length
    /// mismatch, or a worker thread panic.
    pub fn run_windowed_with<W: TraceSource + Sync>(
        cfg: &SimConfig,
        workload: &W,
        workers: usize,
        plan: &WindowPlan,
    ) -> SimReport {
        Self::run_windowed_inner(cfg, workload, workers, Some(plan), TimingLoop::from_env())
    }

    fn run_windowed_inner<W: TraceSource + Sync>(
        cfg: &SimConfig,
        workload: &W,
        workers: usize,
        custom_plan: Option<&WindowPlan>,
        timing_loop: TimingLoop,
    ) -> SimReport {
        cfg.schedule.validate();
        let needs_oracle = cfg.icache_org.needs_oracle() || cfg.attach_oracle;
        // Oracle organizations walk the trace here anyway; record run
        // lengths so window warm-starts map to cursor positions below.
        let (oracle, run_lens, total) = if needs_oracle {
            let mut seq = Vec::new();
            let mut lens: Vec<u32> = Vec::new();
            let mut total = 0u64;
            for r in BlockRuns::new(workload.iter()) {
                seq.push(r.oracle_key());
                lens.push(r.len);
                total += r.len as u64;
            }
            (Some(ReuseOracle::from_sequence(&seq)), lens, total)
        } else {
            let total = workload
                .len_hint()
                .unwrap_or_else(|| workload.iter().count() as u64);
            (None, Vec::new(), total)
        };

        let plan: WindowPlan = match custom_plan {
            Some(p) => {
                assert_eq!(
                    p.total_instructions, total,
                    "window plan must cover the workload's actual length"
                );
                p.clone()
            }
            None => match WindowPlan::for_trace(total, cfg.schedule, cfg.warmup_fraction) {
                Some(p) => p,
                None => return Engine::run_with_loop(cfg, workload, timing_loop),
            },
        };

        // Bounded-reach windows skip their prefix, so a pre-seeked
        // oracle cursor needs, for each window, the index of the block
        // run containing its warm start. Warm starts are nondecreasing,
        // so one pass suffices; a mid-run warm start is exact because
        // the truncated remainder of that run still groups as a single
        // run after the skip, so cursor advances stay one-per-run from
        // there on. (Mirror windows replay from instruction 0 and need
        // no seeking.)
        let cursor_starts: Option<Vec<u64>> = oracle
            .as_ref()
            .filter(|_| plan.warm == WarmPolicy::BoundedReach)
            .map(|_| {
                let mut starts = vec![0u64; plan.windows.len()];
                let mut widx = 0usize;
                let mut cum = 0u64;
                for (ridx, &len) in run_lens.iter().enumerate() {
                    cum += len as u64;
                    while widx < plan.windows.len() && plan.windows[widx].warm_start < cum {
                        starts[widx] = ridx as u64;
                        widx += 1;
                    }
                    if widx == plan.windows.len() {
                        break;
                    }
                }
                starts
            });

        let n = plan.windows.len();
        let run_one = |w: &PlannedWindow| match plan.warm {
            WarmPolicy::MirrorSerial => {
                run_window_mirror(cfg, workload, w, total, oracle.as_ref(), timing_loop)
            }
            WarmPolicy::BoundedReach => run_window_bounded(
                cfg,
                workload,
                w,
                total,
                oracle.as_ref(),
                cursor_starts.as_deref(),
                timing_loop,
            ),
        };
        let outcomes: Vec<WindowOutcome> = if workers <= 1 {
            plan.windows.iter().map(run_one).collect()
        } else {
            let next = AtomicUsize::new(0);
            let mut slots: Vec<Option<WindowOutcome>> = (0..n).map(|_| None).collect();
            let (tx, rx) = mpsc::channel::<(usize, WindowOutcome)>();
            let run_one = &run_one;
            let plan_ref = &plan;
            std::thread::scope(|scope| {
                for _ in 0..workers.min(n) {
                    let tx = tx.clone();
                    let next = &next;
                    scope.spawn(move || loop {
                        // Hand out windows longest-first (cost grows
                        // with detailed_start under full-prefix
                        // warming): classic LPT keeps the deep tail
                        // windows from straggling. Execution order is
                        // unobservable — outcomes land in index slots.
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= n {
                            break;
                        }
                        let i = n - 1 - k;
                        let out = run_one(&plan_ref.windows[i]);
                        if tx.send((i, out)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (i, out) in rx {
                    slots[i] = Some(out);
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("every window delivered exactly once"))
                .collect()
        };
        reduce(cfg, workload.name(), &plan, &outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic(period: u64, warmup_len: u64, detailed_len: u64) -> SampleSchedule {
        SampleSchedule::Periodic {
            period,
            warmup_len,
            detailed_len,
        }
    }

    #[test]
    fn full_schedule_has_no_plan() {
        assert_eq!(
            WindowPlan::for_trace(10_000_000, SampleSchedule::Full, 0.10),
            None
        );
    }

    #[test]
    fn degenerate_trace_has_no_plan() {
        // 20k instructions cannot fit 2k initial warmup + 185k warmup
        // + 22k detailed: the serial engine degenerates to Full, so
        // the planner must refuse too.
        assert_eq!(
            WindowPlan::for_trace(20_000, periodic(700_000, 185_000, 22_000), 0.10),
            None
        );
    }

    #[test]
    fn default_schedule_windows_land_at_period_midpoints() {
        // 20M instructions, default 700k/185k/22k schedule, 10% initial
        // warmup: first interior at 2M + 493k/2 + 185k/2 = 2,339,000,
        // then one window per 700k period until the tail cannot fit a
        // warmup+detailed pair.
        let plan = WindowPlan::for_trace(20_000_000, periodic(700_000, 185_000, 22_000), 0.10)
            .expect("plannable");
        assert_eq!(plan.total_instructions, 20_000_000);
        assert_eq!(plan.windows.len(), 26);
        assert_eq!(plan.windows[0].detailed_start, 2_339_000);
        assert_eq!(plan.windows[1].detailed_start, 3_039_000);
        assert_eq!(plan.windows[25].detailed_start, 19_839_000);
        for w in &plan.windows {
            assert_eq!(w.detailed_len, 22_000);
            assert!(w.detailed_start + w.detailed_len <= 20_000_000);
            assert_eq!(w.warm_start, 0, "default plans warm the full prefix");
        }
    }

    #[test]
    fn plan_is_monotonic_and_in_bounds() {
        for &(total, period, warm, det, frac) in &[
            (20_000_000u64, 700_000u64, 185_000u64, 22_000u64, 0.10f64),
            (1_000_000, 100_000, 20_000, 10_000, 0.10),
            (5_000_000, 250_000, 60_000, 15_000, 0.0),
        ] {
            let plan =
                WindowPlan::for_trace(total, periodic(period, warm, det), frac).expect("plannable");
            let mut prev_end = 0u64;
            for w in &plan.windows {
                assert!(w.warm_start <= w.detailed_start, "warmup precedes interior");
                assert!(w.detailed_start >= prev_end, "interiors are disjoint");
                assert!(w.detailed_len > 0);
                assert!(w.detailed_start + w.detailed_len <= total);
                prev_end = w.detailed_start + w.detailed_len;
            }
            assert_eq!(
                plan.windows.last().unwrap().index,
                plan.windows.len() - 1,
                "indices are canonical"
            );
        }
    }

    #[test]
    fn warm_start_clamps_at_instruction_zero() {
        // Bounded reach, no initial warmup region, early first
        // interior: a 2M reach would start before instruction 0 and
        // must clamp (saturate), not wrap.
        let plan = WindowPlan::with_warm_reach(
            1_000_000,
            periodic(100_000, 20_000, 10_000),
            0.0,
            Some(2_000_000),
        )
        .expect("plannable");
        assert_eq!(plan.windows[0].detailed_start, 45_000);
        assert_eq!(plan.windows[0].warm_start, 0);
    }

    #[test]
    fn bounded_reach_positions_warm_starts_behind_interiors() {
        // Deep in the trace the reach no longer clamps: each warmup
        // starts exactly `warmup_len + reach` before its interior.
        let plan = WindowPlan::with_warm_reach(
            1_000_000,
            periodic(100_000, 20_000, 10_000),
            0.0,
            Some(50_000),
        )
        .expect("plannable");
        let w = &plan.windows[3];
        assert_eq!(w.warm_start, w.detailed_start - 20_000 - 50_000);
        // An unbounded reach over the same schedule differs only in
        // warm starts.
        let full =
            WindowPlan::for_trace(1_000_000, periodic(100_000, 20_000, 10_000), 0.0).unwrap();
        assert_eq!(full.windows.len(), plan.windows.len());
        for (a, b) in full.windows.iter().zip(&plan.windows) {
            assert_eq!(a.detailed_start, b.detailed_start);
            assert_eq!(a.detailed_len, b.detailed_len);
            assert_eq!(a.warm_start, 0);
        }
    }

    #[test]
    fn final_window_truncates_at_end_of_trace() {
        // With 80k instructions and a 100k/20k/10k schedule the second
        // window's fast-forward clamps to zero and its interior hits
        // end-of-trace at 5k of its 10k budget.
        let plan = WindowPlan::for_trace(80_000, periodic(100_000, 20_000, 10_000), 0.0)
            .expect("plannable");
        let last = plan.windows.last().unwrap();
        assert_eq!(last.detailed_start, 75_000);
        assert_eq!(last.detailed_len, 5_000);
        assert_eq!(last.detailed_start + last.detailed_len, 80_000);
    }

    #[test]
    fn fast_forward_clamp_matches_serial_tail_rule() {
        // remaining - warmup - detailed < ff_len near the tail: the
        // planner shortens the skip so a final window still fits —
        // the same `ff = min(ff_len, remaining - warmup - detailed)`
        // clamp as the serial cursor walk.
        let plan = WindowPlan::for_trace(1_050_000, periodic(100_000, 20_000, 10_000), 0.0)
            .expect("plannable");
        let last = plan.windows.last().unwrap();
        assert!(last.detailed_start + last.detailed_len <= 1_050_000);
        // Every interior fits wholly inside the trace; the clamp never
        // plans an empty window.
        assert!(plan.windows.iter().all(|w| w.detailed_len > 0));
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use crate::icache::IcacheOrg;

    #[test]
    #[ignore = "diagnostic"]
    fn windowed_vs_serial_debug() {
        use acic_workloads::{AppProfile, SyntheticWorkload};
        let wl = SyntheticWorkload::with_instructions(AppProfile::web_search(), 5_000_000);
        for org in [IcacheOrg::Lru, IcacheOrg::acic_default()] {
            let cfg = SimConfig::default()
                .with_org(org.clone())
                .with_schedule(SampleSchedule::default_sampled());
            eprintln!("=== serial {org:?} ===");
            let s = Engine::run(&cfg, &wl);
            eprintln!("=== windowed {org:?} ===");
            let w = Engine::run_windowed(&cfg, &wl, 1);
            eprintln!(
                "{org:?}: serial ipc {:.4} windowed ipc {:.4}",
                s.ipc(),
                w.ipc()
            );
            eprintln!(
                "serial l2 {:?} l3 {:?} dram {}",
                s.l2.demand_misses, s.l3.demand_misses, s.dram_accesses
            );
            eprintln!(
                "windowed l2 {:?} l3 {:?} dram {}",
                w.l2.demand_misses, w.l3.demand_misses, w.dram_accesses
            );
        }
    }
}

//! L1i organization selection — one variant per configuration the
//! paper evaluates (Figures 10/11 legends plus the ablations).

use acic_cache::bypass::{
    access_count::AccessCountAdmission, dsb::DsbAdmission, obm::ObmAdmission,
    opt_bypass::OptBypassAdmission, AlwaysAdmit,
};
use acic_cache::policy::PolicyKind;
use acic_cache::victim::vvc::VvcIcache;
use acic_cache::{CacheGeometry, IcacheContents, PlainIcache, VictimCachedIcache};
use acic_core::{AcicConfig, AcicIcache, FilteredIcache};

/// The L1i organizations under test.
#[derive(Clone, Debug, PartialEq)]
pub enum IcacheOrg {
    /// 32 KB 8-way LRU (the baseline). ASID-tagged: multi-tenant
    /// traces coexist in the tag store without flushing.
    Lru,
    /// LRU that invalidates everything on a context switch — the
    /// no-ASID multi-tenant baseline (VA-tagged hardware that cannot
    /// tell tenants apart). Identical to [`IcacheOrg::Lru`] on
    /// single-tenant traces.
    LruFlush,
    /// SRRIP replacement.
    Srrip,
    /// SHiP replacement.
    Ship,
    /// Hawkeye/Harmony replacement (prefetch-aware).
    Harmony,
    /// GHRP replacement.
    Ghrp,
    /// DSB: segmented LRU + adaptive bypassing.
    Dsb,
    /// OBM: LRU + optimal bypass monitor.
    Obm,
    /// Virtual victim cache.
    Vvc,
    /// LRU + 3 KB fully-associative victim cache.
    Vc3k,
    /// A 36 KB, 9-way LRU i-cache (more capacity than ACIC's budget).
    Larger36k,
    /// Belady OPT replacement (requires the reuse oracle).
    Opt,
    /// i-Filter + oracle admission (requires the reuse oracle).
    OptBypass,
    /// i-Filter whose victims are always inserted (Figure 3a).
    IFilterAlways,
    /// i-Filter + access-count comparison (Figure 3a).
    AccessCount,
    /// The paper's contribution, with its full configuration.
    Acic(AcicConfig),
}

impl IcacheOrg {
    /// ACIC with the default (Table I) configuration.
    pub fn acic_default() -> IcacheOrg {
        IcacheOrg::Acic(AcicConfig::default())
    }

    /// Whether this organization needs the two-pass reuse oracle.
    pub fn needs_oracle(&self) -> bool {
        matches!(self, IcacheOrg::Opt | IcacheOrg::OptBypass)
    }

    /// Builds the contents model. `seed` feeds the stochastic
    /// policies (DSB, OBM sampling).
    pub fn build(&self, seed: u64) -> Box<dyn IcacheContents> {
        let geom = CacheGeometry::l1i_32k();
        match self {
            IcacheOrg::Lru => Box::new(PlainIcache::new(geom, PolicyKind::Lru)),
            IcacheOrg::LruFlush => {
                Box::new(PlainIcache::new(geom, PolicyKind::Lru).with_flush_on_switch())
            }
            IcacheOrg::Srrip => Box::new(PlainIcache::new(geom, PolicyKind::Srrip)),
            IcacheOrg::Ship => Box::new(PlainIcache::new(geom, PolicyKind::Ship)),
            IcacheOrg::Harmony => Box::new(PlainIcache::new(
                geom,
                PolicyKind::Hawkeye {
                    prefetch_aware: true,
                },
            )),
            IcacheOrg::Ghrp => Box::new(PlainIcache::new(geom, PolicyKind::Ghrp)),
            IcacheOrg::Dsb => Box::new(
                PlainIcache::new(geom, PolicyKind::Slru)
                    .with_bypass(Box::new(DsbAdmission::new(seed))),
            ),
            IcacheOrg::Obm => Box::new(
                PlainIcache::new(geom, PolicyKind::Lru)
                    .with_bypass(Box::new(ObmAdmission::new(seed))),
            ),
            IcacheOrg::Vvc => Box::new(VvcIcache::new(geom)),
            IcacheOrg::Vc3k => Box::new(VictimCachedIcache::new(geom, PolicyKind::Lru, 48)),
            IcacheOrg::Larger36k => {
                Box::new(PlainIcache::new(CacheGeometry::l1i_36k(), PolicyKind::Lru))
            }
            IcacheOrg::Opt => Box::new(PlainIcache::new(geom, PolicyKind::Opt)),
            IcacheOrg::OptBypass => {
                Box::new(FilteredIcache::new(geom, 16, Box::new(OptBypassAdmission)))
            }
            IcacheOrg::IFilterAlways => {
                Box::new(FilteredIcache::new(geom, 16, Box::new(AlwaysAdmit)))
            }
            IcacheOrg::AccessCount => Box::new(FilteredIcache::new(
                geom,
                16,
                Box::new(AccessCountAdmission::new()),
            )),
            IcacheOrg::Acic(cfg) => Box::new(AcicIcache::new(*cfg)),
        }
    }

    /// Figure-legend label.
    pub fn label(&self) -> &'static str {
        match self {
            IcacheOrg::Lru => "LRU",
            IcacheOrg::LruFlush => "LRU flush",
            IcacheOrg::Srrip => "SRRIP",
            IcacheOrg::Ship => "SHiP",
            IcacheOrg::Harmony => "Harmony",
            IcacheOrg::Ghrp => "GHRP",
            IcacheOrg::Dsb => "DSB",
            IcacheOrg::Obm => "OBM",
            IcacheOrg::Vvc => "VVC",
            IcacheOrg::Vc3k => "VC3K",
            IcacheOrg::Larger36k => "36KB L1i",
            IcacheOrg::Opt => "OPT",
            IcacheOrg::OptBypass => "OPT Bypass",
            IcacheOrg::IFilterAlways => "i-Filter always insert",
            IcacheOrg::AccessCount => "Access count bypass",
            IcacheOrg::Acic(_) => "ACIC",
        }
    }

    /// All organizations of Figures 10/11, in legend order.
    pub fn figure10_set() -> Vec<IcacheOrg> {
        vec![
            IcacheOrg::Srrip,
            IcacheOrg::Ship,
            IcacheOrg::Harmony,
            IcacheOrg::Ghrp,
            IcacheOrg::Dsb,
            IcacheOrg::Obm,
            IcacheOrg::Vvc,
            IcacheOrg::Vc3k,
            IcacheOrg::acic_default(),
            IcacheOrg::Larger36k,
            IcacheOrg::Opt,
            IcacheOrg::OptBypass,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_org_builds() {
        for org in IcacheOrg::figure10_set().into_iter().chain([
            IcacheOrg::Lru,
            IcacheOrg::LruFlush,
            IcacheOrg::IFilterAlways,
            IcacheOrg::AccessCount,
        ]) {
            let contents = org.build(7);
            assert!(!contents.label().is_empty());
            assert!(!org.label().is_empty());
        }
    }

    #[test]
    fn oracle_requirements() {
        assert!(IcacheOrg::Opt.needs_oracle());
        assert!(IcacheOrg::OptBypass.needs_oracle());
        assert!(!IcacheOrg::acic_default().needs_oracle());
        assert!(!IcacheOrg::Lru.needs_oracle());
    }
}

//! The phase-scheduled simulation engine.
//!
//! One engine owns all simulator state — contents model, decoupled
//! front end, backend, memory hierarchy, prefetcher — and drives it
//! over the trace at the fidelity the [`SampleSchedule`] dictates,
//! SMARTS-style:
//!
//! * [`Phase::FastForward`] advances the trace without touching any
//!   simulator state. Exact-sized sources skip in O(1)
//!   ([`TraceSource::skip`] — `VecTrace` by slice `nth`, frozen
//!   `PackedTrace`s by their skip index); generated sources
//!   produce-and-discard, which is why grid experiments freeze each
//!   spec once and replay the packed form.
//!   When a reuse oracle is attached the engine walks runs instead so
//!   the oracle cursor stays in lockstep with the access sequence.
//!   Fast-forwarding is **convergence-gated**: until the warmup
//!   traffic stops installing new L3 lines
//!   ([`L3_CONVERGED_FILLS_PER_MI`]), the gap is warmed instead of
//!   skipped — skipping while the multi-megabyte hierarchy is still
//!   filling is precisely when staleness bites.
//! * [`Phase::Warmup`] is functional warming with statistics gated
//!   off, two-tiered: the streamed bulk warms the deep, slow state
//!   (L1d/L2/L3 contents through a shadow-filtered walk, TAGE, BTB,
//!   ITP), and the last [`WARM_TAIL`] instructions additionally run
//!   the real L1i organization (tags, policies, ACIC's
//!   i-Filter/CSHR/predictor pipeline). Everything learns; no
//!   counter moves. The prefetcher and MSHRs are timing mechanisms
//!   and stay idle.
//! * [`Phase::Detailed`] is the full cycle loop with statistics on.
//!   Bounded windows measure only their steady-state interior for
//!   IPC and the whole window for MPKI (see `WindowSample`).
//!
//! A [`SampleSchedule::Full`] run is a single unbounded detailed
//! phase and reproduces the pre-sampling simulator bit for bit
//! (pinned by `tests/engine_equivalence.rs`). A periodic schedule
//! functionally warms the §IV-A cold-start fraction, then repeats
//! (fast-forward|warm) → warmup → detailed each period — the first
//! period halved so windows sit at period midpoints, an unbiased
//! systematic sample — and extrapolates the windows to the whole
//! trace ([`SampledStats`]). `ACIC_ENGINE_DEBUG=1` dumps per-window
//! samples; `ACIC_PHASE_TIMES=1` prints per-phase wall time.
//!
//! # Examples
//!
//! ```
//! use acic_sim::{Engine, SampleSchedule, SimConfig};
//! use acic_workloads::{AppProfile, SyntheticWorkload};
//!
//! let wl = SyntheticWorkload::with_instructions(AppProfile::sibench(), 400_000);
//! let cfg = SimConfig::default().with_schedule(SampleSchedule::Periodic {
//!     period: 100_000,
//!     warmup_len: 20_000,
//!     detailed_len: 10_000,
//! });
//! let r = Engine::run(&cfg, &wl);
//! let s = r.sampled.expect("periodic schedules extrapolate");
//! assert_eq!(s.windows, 4);
//! assert!(r.ipc() > 0.0);
//! ```

use crate::backend::{Backend, DecodedInstr};
use crate::config::{PrefetcherKind, SampleSchedule, SimConfig};
use crate::frontend::FrontEnd;
use crate::mem::{MemoryHierarchy, MissTracker};
use crate::prefetch::{Entangling, Prefetcher};
use crate::report::{mean_ci95, PrefetchStats, SampledStats, SimReport};
use acic_cache::{AccessCtx, CacheStats, IcacheContents};
use acic_core::AcicIcache;
use acic_trace::{
    BlockRuns, GroupedRuns, Instr, InstrKind, OracleCursor, ReuseOracle, RunInstrs, TraceSource,
    NO_NEXT_USE,
};
use acic_types::{Addr, Asid, Cycle, TaggedBlock};

pub mod window;

/// Instructions at the end of each warmup segment that receive full
/// warming — the real L1i organization (tags, policies, ACIC's
/// i-Filter/CSHR/predictor pipeline) with run grouping and ITP path
/// history — on top of the bulk tier's streamed warming. Everything
/// unique to this tier has a short state memory (a 32 KB L1i, the
/// CSHR's 256 comparisons) and converges well within the span, so
/// the expensive per-run machinery only runs on a small slice of
/// each warmup segment.
pub const WARM_TAIL: u64 = 100_000;

/// Adaptive fast-forward gate: a period's fast-forward gap is warmed
/// functionally (never skipped) until the warmup traffic installs
/// fewer than this many new L3 lines per million instructions.
/// Below the threshold the deep hierarchy has converged — its
/// contents barely change per period — and skipping the gap trades
/// no accuracy the warmup could recover anyway.
pub const L3_CONVERGED_FILLS_PER_MI: u64 = 500;

/// Minimum detailed-window ramp exclusion (instructions). See
/// `WindowCheckpoint::detailed_window`.
const RAMP_FLOOR: u64 = 5_000;

/// Simulation fidelity phases of the engine's schedule machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Advance the trace; touch no simulator state.
    FastForward,
    /// Functional warming: caches, predictors, and ACIC's admission
    /// machinery learn; statistics are gated off.
    Warmup,
    /// Full cycle-accurate simulation with statistics on.
    Detailed,
}

/// Cycle-loop scheduling strategy for detailed windows.
///
/// Both strategies execute the *same* per-cycle body and produce
/// bit-identical [`SimReport`]s (pinned by `tests/engine_equivalence.rs`
/// and the dense-vs-event property suite); they differ only in how the
/// clock advances between cycles where something happens.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TimingLoop {
    /// Skip-ahead scheduling: after each executed cycle, jump `now` to
    /// the earliest cycle at which *any* pipeline structure can change
    /// — FTQ readiness, MSHR completions, pending prefetch fills, BPU
    /// availability, backend retire slots, contents-model tick work —
    /// and batch the skipped ticks. The default.
    #[default]
    EventHorizon,
    /// The reference cycle-by-cycle loop, retained as the
    /// equivalence-tested twin (`ACIC_DENSE_LOOP=1` selects it at the
    /// CLI without touching any [`SimConfig`] field, so result-store
    /// keys are loop-agnostic).
    Dense,
}

impl TimingLoop {
    /// The process-wide loop selection: [`TimingLoop::Dense`] iff
    /// `ACIC_DENSE_LOOP=1`, else [`TimingLoop::EventHorizon`].
    pub fn from_env() -> Self {
        if std::env::var_os("ACIC_DENSE_LOOP").is_some_and(|v| v == "1") {
            TimingLoop::Dense
        } else {
            TimingLoop::EventHorizon
        }
    }
}

/// Prefetches issued to the hierarchy and awaiting their fill cycle,
/// with the earliest due time tracked incrementally so the event
/// horizon reads it in O(1) and the per-cycle drain can prove itself a
/// no-op without scanning. Fill order is insertion order — identical
/// to the dense loop's historical `retain` walk.
#[derive(Debug, Default)]
struct PendingPrefetches {
    slots: Vec<(Cycle, TaggedBlock)>,
    /// Minimum ready cycle over `slots`; meaningless when empty.
    earliest: Cycle,
}

impl PendingPrefetches {
    fn push(&mut self, ready: Cycle, block: TaggedBlock) {
        if self.slots.is_empty() || ready < self.earliest {
            self.earliest = ready;
        }
        self.slots.push((ready, block));
    }

    /// Earliest fill cycle among outstanding prefetches.
    fn earliest(&self) -> Option<Cycle> {
        (!self.slots.is_empty()).then_some(self.earliest)
    }

    /// Moves every entry due at `now` into `due` (insertion order),
    /// compacting the rest in place. O(1) when nothing is due.
    fn drain_due(&mut self, now: Cycle, due: &mut Vec<TaggedBlock>) {
        if self.slots.is_empty() || self.earliest > now {
            return;
        }
        self.slots.retain(|&(ready, block)| {
            if ready <= now {
                due.push(block);
                false
            } else {
                true
            }
        });
        self.earliest = self.slots.iter().map(|&(r, _)| r).min().unwrap_or(0);
    }
}

/// One measured detailed window.
///
/// IPC derives from the steady-state interior (`instructions`,
/// `cycles`); MPKI derives from the whole window (`full_instructions`,
/// `full_demand_misses`) — the window edges run at unrepresentative
/// IPC, but their miss counts are real traffic whose start/drain
/// biases largely cancel, and the wider span more than halves the
/// miss-count noise of a small window.
#[derive(Clone, Copy, Debug, Default)]
struct WindowSample {
    instructions: u64,
    cycles: Cycle,
    full_instructions: u64,
    full_demand_misses: u64,
}

/// A measurement snapshot inside a detailed window.
#[derive(Clone, Copy, Debug)]
struct Snapshot {
    retired: u64,
    cycles: Cycle,
}

/// One functional contents access: oracle-cursor advance, context
/// build, access + fill-on-miss. Shared verbatim between the
/// functional simulator's hot loop and the engine's warmup phase so
/// the two cannot drift. Returns whether the access hit. The caller
/// owns context-switch notification and `tick`.
pub(crate) fn contents_step(
    contents: &mut dyn IcacheContents,
    cursor: &mut Option<OracleCursor<'_>>,
    tagged: TaggedBlock,
    access_index: u64,
    quiet: bool,
) -> bool {
    let next_use = match cursor.as_mut() {
        Some(c) => {
            c.advance(tagged.oracle_key());
            c.next_use_of(tagged.oracle_key())
        }
        None => NO_NEXT_USE,
    };
    let mut ctx = AccessCtx::demand_tagged(tagged, access_index).with_next_use(next_use);
    if quiet {
        ctx = ctx.quiet();
    }
    if let Some(c) = cursor.as_ref() {
        ctx = ctx.with_oracle(c);
    }
    let hit = contents.access(&ctx).hit;
    if !hit {
        contents.fill(&ctx);
    }
    hit
}

/// All mutable simulator state for one scheduled execution — caches,
/// front end, predictors, MSHRs, and the phase cursors — as one
/// explicit, cheaply constructible struct.
///
/// Under the serial [`Engine::run`] schedule a single checkpoint is
/// persistent across phases: caches and predictors warm monotonically
/// over the whole run, exactly like the hardware they model; only
/// statistics are phase-gated. The window-parallel mode
/// ([`Engine::run_windowed`]) instead constructs one fresh checkpoint
/// per sampled window ([`WindowCheckpoint::fresh`] is allocation-cheap
/// — tag arrays and predictor tables, no trace-sized state), warms it
/// over the window's bounded reach, and discards it after the
/// detailed interior is measured. The same struct is the checkpoint
/// substrate the roadmap's cluster and DSE items serialize.
pub(crate) struct WindowCheckpoint<'o> {
    contents: Box<dyn IcacheContents>,
    cursor: Option<OracleCursor<'o>>,
    frontend: FrontEnd,
    backend: Backend,
    mem: MemoryHierarchy,
    l1i_mshr: MissTracker,
    prefetcher: Prefetcher,
    prefetch_stats: PrefetchStats,
    pending_prefetches: PendingPrefetches,
    candidates: Vec<TaggedBlock>,
    /// Scratch for the pending-prefetch drain (reused every cycle; the
    /// loop never allocates for it in steady state).
    due_scratch: Vec<TaggedBlock>,
    /// Scratch run the BPU feed fills in place (no per-run `Vec`).
    run_scratch: RunInstrs,
    timing_loop: TimingLoop,
    fetch_asid: Asid,
    context_switches: u64,
    access_index: u64,
    now: Cycle,
    wants_tick: bool,
    max_cycles: Cycle,
    /// Instructions consumed from the trace by any phase.
    consumed: u64,
    /// Latched when the trace itself (not a window budget) ran out.
    trace_over: bool,
    /// Instructions spent fast-forwarding / warming (for the report).
    fastforwarded: u64,
    warmed: u64,
    /// Bulk-warmup miss filter: a plain LRU tag store with the L1i's
    /// geometry that stands in for the real organization during the
    /// cheap warming tier, deciding which instruction blocks the
    /// L2/L3 would have seen. Probed quiet; never reported.
    shadow_l1i: acic_cache::SetAssocCache,
    /// Full-schedule warm-up bookkeeping (§IV-A first-10% exclusion).
    warmup_instrs: u64,
    warm_snapshot: Option<(Cycle, u64, CacheStats)>,
    t_ff: f64,
    t_warm: f64,
    t_detail: f64,
    /// Cycles actually executed by the detailed loop (diagnostics:
    /// `now - executed_cycles` is what the event horizon skipped).
    executed_cycles: u64,
}

impl<'o> WindowCheckpoint<'o> {
    /// Builds a cold checkpoint: every cache, predictor, and queue in
    /// its power-on state, phase cursors at zero. Construction cost is
    /// bounded by the architectural table sizes (tag arrays, TAGE/BTB
    /// tables — tens of kilobytes), never by the trace, which is what
    /// makes one-checkpoint-per-window execution affordable.
    ///
    /// The oracle cursor starts detached; callers that simulate
    /// oracle-dependent organizations attach one afterwards
    /// (`state.cursor = Some(...)`), which is also how the
    /// window-parallel mode hands each worker a cursor pre-seeked to
    /// its window ([`ReuseOracle::cursor_at`]).
    pub(crate) fn fresh(
        cfg: &SimConfig,
        seed: u64,
        total_instructions: u64,
        timing_loop: TimingLoop,
    ) -> WindowCheckpoint<'o> {
        let mut contents = cfg.icache_org.build(seed);
        if cfg.unbounded_cshr {
            if let crate::icache::IcacheOrg::Acic(acic_cfg) = &cfg.icache_org {
                contents = Box::new(AcicIcache::new(*acic_cfg).with_unbounded_instrumentation());
            }
        }
        let wants_tick = contents.wants_tick();
        WindowCheckpoint {
            contents,
            cursor: None,
            frontend: FrontEnd::new(cfg),
            backend: Backend::new(cfg),
            mem: MemoryHierarchy::new(cfg),
            l1i_mshr: MissTracker::new(cfg.l1i_mshrs),
            prefetcher: match cfg.prefetcher {
                PrefetcherKind::None => Prefetcher::None,
                PrefetcherKind::Fdp => Prefetcher::Fdp,
                PrefetcherKind::Entangling => Prefetcher::Entangling(Entangling::new()),
            },
            prefetch_stats: PrefetchStats::default(),
            pending_prefetches: PendingPrefetches::default(),
            candidates: Vec::new(),
            due_scratch: Vec::new(),
            run_scratch: RunInstrs::scratch(),
            timing_loop,
            fetch_asid: Asid::HOST,
            context_switches: 0,
            access_index: 0,
            now: 0,
            wants_tick,
            max_cycles: 400 * total_instructions + 1_000_000,
            consumed: 0,
            trace_over: false,
            fastforwarded: 0,
            warmed: 0,
            shadow_l1i: {
                let geom = acic_cache::CacheGeometry::l1i_32k();
                acic_cache::SetAssocCache::new(
                    geom,
                    acic_cache::policy::PolicyKind::Lru.build(geom),
                )
            },
            warmup_instrs: (total_instructions as f64 * cfg.warmup_fraction) as u64,
            warm_snapshot: None,
            t_ff: 0.0,
            t_warm: 0.0,
            t_detail: 0.0,
            executed_cycles: 0,
        }
    }
}

impl WindowCheckpoint<'_> {
    /// Runs one detailed window: the cycle loop, feeding the BPU at
    /// most `budget` instructions (run-granular, so the window may
    /// overshoot by a partial run), then draining the pipeline. A
    /// `u64::MAX` budget with a fresh engine is exactly the unsampled
    /// simulator (and returns no sample).
    ///
    /// Bounded windows measure only their steady-state interior: the
    /// first `budget / 10` retired instructions (pipeline and
    /// prefetch-stream ramp after an empty-queue start) and the
    /// end-of-window drain (the pipeline emptying with the BPU
    /// already out of budget) are simulated but excluded from the
    /// returned sample — both run at structurally unrepresentative
    /// IPC and would bias the extrapolation low.
    fn detailed_window<I: Iterator<Item = Instr>>(
        &mut self,
        runs: &mut GroupedRuns<I>,
        budget: u64,
        cfg: &SimConfig,
    ) -> Option<WindowSample> {
        let WindowCheckpoint {
            contents,
            cursor,
            frontend,
            backend,
            mem,
            l1i_mshr,
            prefetcher,
            prefetch_stats,
            pending_prefetches,
            candidates,
            due_scratch,
            run_scratch,
            timing_loop,
            fetch_asid,
            context_switches,
            access_index,
            now,
            wants_tick,
            max_cycles,
            consumed,
            trace_over,
            warmup_instrs,
            warm_snapshot,
            executed_cycles,
            ..
        } = self;
        let mut fed = 0u64;
        let mut budget_hit = false;
        let sampling = budget != u64::MAX;
        // Proportional ramp with a floor: the post-handoff artifact
        // (prefetch-stream restart, L1i content settling) spans a
        // roughly constant number of instructions, so tiny windows
        // must not scale the exclusion down past it.
        let ramp = (budget / 10).max(RAMP_FLOOR.min(budget / 2));
        let retired0 = backend.retired;
        let entry_misses = contents.stats().demand_misses;
        let entry = Snapshot {
            retired: backend.retired,
            cycles: *now,
        };
        let mut measure_start: Option<Snapshot> = None;
        let mut measure_end: Option<Snapshot> = None;

        loop {
            *now += 1;
            *executed_cycles += 1;
            assert!(
                *now < *max_cycles,
                "simulation exceeded cycle bound (deadlock?)"
            );

            // Backend: retire, then dispatch.
            backend.retire(*now);
            backend.dispatch(*now, mem);
            for (index, done) in backend.resolved_branches.drain(..) {
                frontend.on_branch_resolved(index, done);
            }

            // Fetch: service the FTQ head.
            let mut pop_head = false;
            if let Some((head, arena)) = frontend.ftq.front_mut_with_arena() {
                if !head.accessed {
                    head.accessed = true;
                    *access_index += 1;
                    let tagged = head.block.with_asid(head.asid);
                    // The fetch stream crossed into another address
                    // space: tell the contents model (flush-on-switch
                    // organizations gut themselves here).
                    if head.asid != *fetch_asid {
                        *fetch_asid = head.asid;
                        *context_switches += 1;
                        contents.on_context_switch(head.asid);
                    }
                    let next_use = match cursor.as_mut() {
                        Some(c) => {
                            c.advance(tagged.oracle_key());
                            c.next_use_of(tagged.oracle_key())
                        }
                        None => NO_NEXT_USE,
                    };
                    head.next_use = next_use;
                    let outcome = {
                        let mut ctx =
                            AccessCtx::demand_tagged(tagged, *access_index).with_next_use(next_use);
                        if let Some(c) = cursor.as_ref() {
                            ctx = ctx.with_oracle(c);
                        }
                        contents.access(&ctx)
                    };
                    prefetcher.on_demand_fetch(tagged, *now);
                    if outcome.hit {
                        head.ready_at = *now + outcome.extra_latency as u64;
                    } else {
                        head.needs_fill = true;
                        head.ready_at = match l1i_mshr.lookup(tagged, *now) {
                            // A prefetch already has the block in flight.
                            Some(ready) => ready,
                            None => {
                                let start = if l1i_mshr.full(*now) {
                                    l1i_mshr
                                        .earliest_ready()
                                        .expect("full tracker has entries")
                                        .max(*now)
                                } else {
                                    *now
                                };
                                let ready = mem.fetch_instr_block(tagged, start);
                                l1i_mshr.insert(tagged, ready);
                                prefetcher.on_demand_miss(tagged, *now, ready - *now);
                                ready
                            }
                        };
                    }
                }
                if *now >= head.ready_at {
                    if head.needs_fill {
                        head.needs_fill = false;
                        let mut ctx = AccessCtx::demand_tagged(
                            head.block.with_asid(head.asid),
                            *access_index,
                        )
                        .with_next_use(head.next_use);
                        if let Some(c) = cursor.as_ref() {
                            ctx = ctx.with_oracle(c);
                        }
                        contents.fill(&ctx);
                    }
                    // Deliver instructions into the decode queue,
                    // reading straight out of the FTQ's ring arena.
                    let space = backend.dq_space();
                    let remaining = head.len as usize - head.delivered;
                    let n = remaining.min(space).min(cfg.fetch_width as usize);
                    for k in 0..n {
                        let at = head.delivered + k;
                        backend.dq.push_back(DecodedInstr {
                            instr: arena.get(head.start + at as u64),
                            index: head.first_index + at as u64,
                        });
                    }
                    head.delivered += n;
                    pop_head = head.delivered == head.len as usize;
                }
            }
            if pop_head {
                frontend.ftq.pop_front();
            }

            // BPU: run ahead of fetch, within the window's budget.
            frontend.bpu_cycle(*now, run_scratch, |out| {
                if fed >= budget {
                    budget_hit = true;
                    return false;
                }
                if runs.next_into(out) {
                    let len = out.instrs.len() as u64;
                    fed += len;
                    *consumed += len;
                    true
                } else {
                    *trace_over = true;
                    false
                }
            });
            if sampling {
                if measure_start.is_none() && backend.retired >= retired0 + ramp {
                    measure_start = Some(Snapshot {
                        retired: backend.retired,
                        cycles: *now,
                    });
                }
                if budget_hit && measure_end.is_none() {
                    measure_end = Some(Snapshot {
                        retired: backend.retired,
                        cycles: *now,
                    });
                }
            }

            // Prefetch: gather candidates, filter, issue, fill. The
            // scan's outcome doubles as the event horizon's prefetch
            // term: candidate sets and filter verdicts are functions
            // of FTQ contents, L1i contents, the fetch ASID, and MSHR
            // occupancy — all frozen across a skipped span — so the
            // skip logic below can replay this cycle's result for
            // every skipped cycle instead of re-scanning.
            candidates.clear();
            prefetcher.candidates(&frontend.ftq, candidates);
            let mut issued = 0;
            let mut cycle_filtered = 0u64;
            let mut width_break = false;
            for &block in candidates.iter() {
                if issued >= cfg.prefetch_width {
                    // Unexamined candidates remain; if the set
                    // persists, the next cycle may issue from them.
                    width_break = true;
                    break;
                }
                // Never prefetch into an address space the core has
                // not switched to yet: its translations are not
                // active, and for flush-on-switch organizations the
                // lines would be installed only to be flushed the
                // moment the switch is crossed. (No-op single-tenant:
                // every candidate carries the host ASID.)
                if block.asid != *fetch_asid {
                    cycle_filtered += 1;
                    continue;
                }
                if contents.contains_block(block) || l1i_mshr.lookup(block, *now).is_some() {
                    cycle_filtered += 1;
                    continue;
                }
                if l1i_mshr.full(*now) {
                    cycle_filtered += 1;
                    break;
                }
                let ready = mem.fetch_instr_block(block, *now);
                l1i_mshr.insert(block, ready);
                pending_prefetches.push(ready, block);
                prefetch_stats.issued += 1;
                issued += 1;
            }
            prefetch_stats.filtered += cycle_filtered;
            due_scratch.clear();
            pending_prefetches.drain_due(*now, due_scratch);
            for &block in due_scratch.iter() {
                let future = cursor
                    .as_ref()
                    .map_or(NO_NEXT_USE, |c| c.future_use_of(block.oracle_key()));
                let mut ctx = AccessCtx::prefetch(block.block, *access_index)
                    .with_asid(block.asid)
                    .with_next_use(future);
                if let Some(c) = cursor.as_ref() {
                    ctx = ctx.with_oracle(c);
                }
                contents.fill(&ctx);
            }

            if *wants_tick {
                contents.tick(*now);
            }

            // Warm-up snapshot (Full-schedule §IV-A accounting).
            if warm_snapshot.is_none() && backend.retired >= *warmup_instrs {
                *warm_snapshot = Some((*now, backend.retired, contents.stats()));
            }

            if frontend.drained() && backend.drained() {
                break;
            }

            // Event horizon: having just executed a real cycle, find
            // the earliest future cycle at which *anything* can change
            // and jump the clock to just before it. Every term below is
            // an upper bound on idleness — a horizon that is too early
            // merely re-executes a no-op cycle (the dense loop's
            // steady state), while every state change is provably at or
            // after one of the terms, so the jump is cycle-exact.
            if *timing_loop == TimingLoop::EventHorizon {
                let floor = *now + 1;
                // All-quiet fallback: the deadlock bound. Jumping there
                // trips the cycle assert exactly like the dense loop
                // spinning its wheels would, only sooner.
                let mut horizon = *max_cycles;
                let event = |h: &mut Cycle, c: Cycle| *h = (*h).min(c.max(floor));
                // (a) In-order retirement: nothing leaves the ROB
                // before its head completes.
                if let Some(done) = backend.next_retire_at() {
                    event(&mut horizon, done);
                }
                // (b) Dispatch drains the decode queue any cycle the
                // ROB has room.
                if !backend.dq.is_empty() && !backend.rob_full() {
                    event(&mut horizon, floor);
                }
                // (c) The FTQ head: first touch is immediate; an
                // accessed head waits for its (MSHR-tracked) fill at
                // `ready_at`; a ready head delivers whenever the
                // decode queue has space. Every live L1i-MSHR entry's
                // completion is either this head's `ready_at` or a
                // pending-prefetch due time (d), so MSHR occupancy is
                // frozen across the skipped span.
                if let Some(head) = frontend.ftq.front() {
                    if !head.accessed {
                        event(&mut horizon, floor);
                    } else if *now < head.ready_at {
                        event(&mut horizon, head.ready_at);
                    } else if backend.dq_space() > 0 {
                        event(&mut horizon, floor);
                    }
                }
                // (d) Outstanding prefetches fill at their due cycle.
                if let Some(ready) = pending_prefetches.earliest() {
                    event(&mut horizon, ready);
                }
                // (e) The BPU produces a run the cycle it is available,
                // unless stalled, starved, or blocked on a full FTQ —
                // all conditions only a dense cycle can clear.
                if let Some(at) = frontend.bpu_horizon() {
                    event(&mut horizon, at);
                }
                // (f) Contents-model tick work (ACIC's delayed HRT-PT
                // updates). Ticks before this are pure no-ops and are
                // batched below.
                if *wants_tick {
                    if let Some(due) = contents.next_tick_due() {
                        event(&mut horizon, due);
                    }
                }
                // (g) Prefetch, from this cycle's scan. FDP candidate
                // sets derive from the (frozen) FTQ and persist, so
                // every skipped cycle re-filters the same set with the
                // same verdicts, adding the blocks issued above (MSHR-
                // tracked from now on). Two cases force the next cycle
                // dense instead: a width-limit break left unexamined
                // candidates that may issue, and a prefetch fill *after*
                // the scan (the drain below it) may have evicted a
                // candidate that scanned as resident, making it
                // issuable. Drain-style prefetchers (Entangling)
                // consumed their candidates this cycle; the span's sets
                // are empty either way.
                let persistent = matches!(prefetcher, Prefetcher::Fdp);
                if persistent && cfg.prefetch_width > 0 && (width_break || !due_scratch.is_empty())
                {
                    event(&mut horizon, floor);
                }

                if horizon > floor {
                    let skipped = horizon - floor;
                    if persistent {
                        prefetch_stats.filtered += (cycle_filtered + issued as u64) * skipped;
                    }
                    if *wants_tick {
                        // One batched tick replaces the span's no-op
                        // ticks: nothing is due before `horizon`, so
                        // only the model's internal clock advances —
                        // exactly as the dense ticks would have left it
                        // entering the next live cycle.
                        contents.tick(horizon - 1);
                    }
                    *now = horizon - 1;
                }
            }
        }

        if !sampling {
            return None;
        }
        // The trace (or a tiny budget) may have ended before either
        // snapshot landed; fall back to the widest valid interval.
        let end = measure_end.unwrap_or(Snapshot {
            retired: backend.retired,
            cycles: *now,
        });
        let start = measure_start
            .filter(|s| s.retired <= end.retired && s.cycles <= end.cycles)
            .unwrap_or(entry);
        (end.retired > start.retired && end.cycles > start.cycles).then(|| WindowSample {
            instructions: end.retired - start.retired,
            cycles: end.cycles - start.cycles,
            full_instructions: backend.retired - entry.retired,
            full_demand_misses: contents.stats().demand_misses - entry_misses,
        })
    }

    /// Runs the warmup phase over `budget` instructions: functional
    /// warming with statistics gated, two-tiered by state memory
    /// depth.
    ///
    /// The **bulk** of the segment warms only the deep state — the
    /// L1d/L2/L3 data contents, whose multi-megabyte capacity takes
    /// millions of instructions to converge — at a few nanoseconds
    /// per instruction. The final [`WARM_TAIL`] instructions
    /// additionally run the full functional L1i loop (tags, policies,
    /// ACIC's i-Filter/CSHR/predictor) and train the branch
    /// predictors; all of that state has a short memory and is fully
    /// warm within the tail. Time advances one cycle per tail block
    /// access so delayed-update pipelines (ACIC's HRT-PT) keep
    /// draining.
    fn warmup_segment<I: Iterator<Item = Instr>>(
        &mut self,
        runs: &mut GroupedRuns<I>,
        budget: u64,
    ) {
        self.frontend.set_stats_enabled(false);
        let bulk_budget = budget.saturating_sub(WARM_TAIL);

        // Bulk tier: stream instructions with no run materialization.
        // The shadow LRU store decides which instruction blocks the
        // unified levels would have seen; loads and stores warm the
        // data hierarchy directly.
        if bulk_budget > 0 {
            let WindowCheckpoint {
                cursor,
                mem,
                shadow_l1i,
                frontend,
                ..
            } = self;
            // Data warms run through a small FIFO: the host-prefetch
            // hint fires at enqueue and the simulated walk at dequeue
            // a few memory operations later, giving the hint real
            // latency to cover. Data-warm order is preserved (FIFO);
            // only the interleaving with instruction-side warms
            // shifts by a few operations — an equally valid warming
            // order, and deterministic.
            const DATA_LAG: usize = 4;
            let mut data_fifo: [(Addr, Asid); DATA_LAG] = [(Addr::new(0), Asid::HOST); DATA_LAG];
            let mut head = 0usize;
            let mut queued = 0usize;
            let streamed = runs.stream_instrs(bulk_budget, |instr, run_start| {
                if run_start {
                    let tagged = instr.tagged_block();
                    if let Some(c) = cursor.as_mut() {
                        // No real L1i probe here, but the oracle
                        // cursor still advances one position per run.
                        c.advance(tagged.oracle_key());
                    }
                    if !shadow_l1i.warm_touch(tagged) {
                        mem.warm_instr_block(tagged);
                    }
                }
                match instr.kind {
                    InstrKind::Load { addr } | InstrKind::Store { addr } => {
                        mem.hint_data(addr, instr.asid());
                        if queued == DATA_LAG {
                            let (a, s) = data_fifo[head];
                            mem.warm_data(a, s);
                        } else {
                            queued += 1;
                        }
                        data_fifo[head] = (addr, instr.asid());
                        head = (head + 1) % DATA_LAG;
                    }
                    InstrKind::Branch { .. } => frontend.warm_branches(&instr),
                    _ => {}
                }
            });
            // Drain the lagged warms (oldest first).
            let start = (head + DATA_LAG - queued) % DATA_LAG;
            for k in 0..queued {
                let (a, s) = data_fifo[(start + k) % DATA_LAG];
                mem.warm_data(a, s);
            }
            self.consumed += streamed;
            self.warmed += streamed;
            if streamed < bulk_budget {
                self.trace_over = true;
                self.frontend.set_stats_enabled(true);
                return;
            }
        }

        // Tail tier: full functional warming of the real L1i
        // organization plus branch-predictor training, streamed the
        // same way as the bulk (no run materialization).
        let tail_budget = budget - bulk_budget;
        if tail_budget > 0 {
            let WindowCheckpoint {
                contents,
                cursor,
                mem,
                frontend,
                fetch_asid,
                access_index,
                now,
                wants_tick,
                ..
            } = self;
            let streamed = runs.stream_instrs(tail_budget, |instr, run_start| {
                if run_start {
                    let tagged = instr.tagged_block();
                    if instr.asid() != *fetch_asid {
                        // Uncounted: context_switches reports
                        // detailed-window traffic only, like every
                        // other statistic.
                        *fetch_asid = instr.asid();
                        contents.on_context_switch(instr.asid());
                    }
                    *access_index += 1;
                    let hit = contents_step(contents.as_mut(), cursor, tagged, *access_index, true);
                    if !hit {
                        mem.warm_instr_block(tagged);
                    }
                    // One cycle per block access so delayed-update
                    // pipelines (ACIC's HRT-PT) keep draining.
                    *now += 1;
                    if *wants_tick {
                        contents.tick(*now);
                    }
                }
                match instr.kind {
                    InstrKind::Load { addr } | InstrKind::Store { addr } => {
                        mem.warm_data(addr, instr.asid());
                    }
                    InstrKind::Branch { .. } => frontend.warm_branches(&instr),
                    _ => {}
                }
            });
            self.consumed += streamed;
            self.warmed += streamed;
            if streamed < tail_budget {
                self.trace_over = true;
            }
        }
        self.frontend.set_stats_enabled(true);
    }

    /// Fast-forwards `budget` instructions. Without an oracle this
    /// delegates to the source's [`TraceSource::skip`] fast path;
    /// with one it walks runs so the cursor stays in sync with the
    /// block-access sequence.
    fn fast_forward<I: Iterator<Item = Instr>>(
        &mut self,
        runs: &mut GroupedRuns<I>,
        budget: u64,
        skip: impl FnOnce(&mut I, u64) -> u64,
    ) {
        if budget == 0 {
            return;
        }
        if self.cursor.is_some() {
            let mut done = 0u64;
            let mut scratch = RunInstrs::scratch();
            while done < budget {
                if !runs.next_into(&mut scratch) {
                    self.trace_over = true;
                    break;
                }
                let len = scratch.instrs.len() as u64;
                done += len;
                self.consumed += len;
                self.fastforwarded += len;
                if let Some(c) = self.cursor.as_mut() {
                    c.advance(scratch.tagged().oracle_key());
                }
            }
        } else {
            let skipped = runs.skip_instrs_with(budget, skip);
            self.consumed += skipped;
            self.fastforwarded += skipped;
            if skipped < budget {
                self.trace_over = true;
            }
        }
    }

    /// Dispatches one phase segment. Detailed segments with a
    /// bounded budget return their measured interior sample.
    fn segment<I: Iterator<Item = Instr>>(
        &mut self,
        phase: Phase,
        runs: &mut GroupedRuns<I>,
        budget: u64,
        cfg: &SimConfig,
        skip: impl FnOnce(&mut I, u64) -> u64,
    ) -> Option<WindowSample> {
        let t0 = std::time::Instant::now();
        let out = match phase {
            Phase::FastForward => {
                self.fast_forward(runs, budget, skip);
                None
            }
            Phase::Warmup => {
                self.warmup_segment(runs, budget);
                None
            }
            Phase::Detailed => self.detailed_window(runs, budget, cfg),
        };
        let dt = t0.elapsed().as_secs_f64();
        match phase {
            Phase::FastForward => self.t_ff += dt,
            Phase::Warmup => self.t_warm += dt,
            Phase::Detailed => self.t_detail += dt,
        }
        out
    }
}

/// The phase-scheduled simulation engine: one state machine serving
/// full-detail runs (bit-identical to the pre-sampling simulator) and
/// SMARTS-style sampled runs from the same code path.
#[derive(Debug)]
pub struct Engine;

impl Engine {
    /// Runs `workload` under `cfg` and returns the report.
    ///
    /// Performs a functional pre-pass when the organization needs the
    /// reuse oracle (OPT, OPT-bypass) or when
    /// [`SimConfig::attach_oracle`] requests instrumentation.
    ///
    /// Traces shorter than one warmup+detailed window are simulated
    /// in full regardless of the schedule (sampling a trace that
    /// small would measure nothing).
    ///
    /// # Panics
    ///
    /// Panics if the schedule is inconsistent
    /// ([`SampleSchedule::validate`]) or the simulation exceeds a
    /// generous cycle bound (indicates a pipeline deadlock — a bug,
    /// not a workload property).
    pub fn run<W: TraceSource>(cfg: &SimConfig, workload: &W) -> SimReport {
        Self::run_with_loop(cfg, workload, TimingLoop::from_env())
    }

    /// [`Engine::run`] with an explicit [`TimingLoop`] selection —
    /// the entry point the dense-vs-event equivalence suites drive.
    pub fn run_with_loop<W: TraceSource>(
        cfg: &SimConfig,
        workload: &W,
        timing_loop: TimingLoop,
    ) -> SimReport {
        cfg.schedule.validate();
        let needs_oracle = cfg.icache_org.needs_oracle() || cfg.attach_oracle;
        let (oracle, total_instructions) = if needs_oracle {
            // The oracle pre-pass has to walk the trace anyway; count
            // instructions while materializing the block sequence.
            let mut total = 0u64;
            let mut seq = Vec::new();
            for r in BlockRuns::new(workload.iter()) {
                // Oracle keys are flattened tagged identities, so
                // tenants' overlapping VAs stay distinct.
                seq.push(r.oracle_key());
                total += r.len as u64;
            }
            (Some(ReuseOracle::from_sequence(&seq)), total)
        } else {
            // No oracle: take the source's exact length when it knows
            // it (synthetic workloads and in-memory traces do), and
            // only fall back to a counting pass for sources that
            // cannot answer without walking.
            let total = workload
                .len_hint()
                .unwrap_or_else(|| workload.iter().count() as u64);
            (None, total)
        };

        let mut state =
            WindowCheckpoint::fresh(cfg, workload.seed(), total_instructions, timing_loop);
        state.cursor = oracle.as_ref().map(|o| o.cursor());

        let mut runs = GroupedRuns::new(workload.iter());
        let mut windows: Vec<WindowSample> = Vec::new();

        // A schedule that cannot fit the initial warmup plus a single
        // warmup+detailed window degenerates to full detail —
        // sampling a trace that small would measure nothing.
        let initial_warmup = (total_instructions as f64 * cfg.warmup_fraction) as u64;
        let schedule = match cfg.schedule {
            SampleSchedule::Periodic {
                warmup_len,
                detailed_len,
                ..
            } if total_instructions <= initial_warmup + warmup_len + detailed_len => {
                SampleSchedule::Full
            }
            s => s,
        };

        match schedule {
            SampleSchedule::Full => {
                state.segment(Phase::Detailed, &mut runs, u64::MAX, cfg, W::skip);
            }
            SampleSchedule::Periodic {
                period,
                warmup_len,
                detailed_len,
            } => {
                // The cold-start transient (§IV-A's excluded first
                // 10%) is warmed functionally, never measured —
                // mirroring the Full schedule's measured region.
                state.segment(Phase::Warmup, &mut runs, initial_warmup, cfg, W::skip);
                let ff_len = period - warmup_len - detailed_len;
                let mut first_period = true;
                let mut converged = false;
                let mut last_l3_fills = state.mem.warm_l3_fills;
                let mut last_warmed = state.warmed;
                while !state.trace_over && state.consumed < total_instructions {
                    let remaining = total_instructions - state.consumed;
                    // Halve the first period so windows land at
                    // period midpoints — an unbiased systematic
                    // sample of the measured range rather than its
                    // right edges (IPC trends along the trace would
                    // otherwise skew the extrapolation).
                    let (ff_want, warmup) = if first_period {
                        first_period = false;
                        (ff_len / 2, warmup_len / 2)
                    } else {
                        (ff_len, warmup_len)
                    };
                    // Never skip so far that the trace tail cannot fit
                    // a final warmup+detailed window.
                    let ff = ff_want.min(remaining.saturating_sub(warmup + detailed_len));
                    if converged && ff > 0 {
                        state.segment(Phase::FastForward, &mut runs, ff, cfg, W::skip);
                        if state.trace_over {
                            break;
                        }
                        state.segment(Phase::Warmup, &mut runs, warmup, cfg, W::skip);
                    } else {
                        // Deep state still converging: warm the gap
                        // instead of skipping it (adaptive
                        // fast-forward; see `L3_CONVERGED_FILLS_PER_MI`).
                        state.segment(Phase::Warmup, &mut runs, ff + warmup, cfg, W::skip);
                    }
                    if state.trace_over {
                        break;
                    }
                    if let Some(w) =
                        state.segment(Phase::Detailed, &mut runs, detailed_len, cfg, W::skip)
                    {
                        windows.push(w);
                    }
                    if !state.trace_over {
                        state.frontend.resume_stream();
                    }
                    // Re-evaluate convergence from this period's
                    // warm-traffic fill rate (hysteresis-free: a phase
                    // change that reheats the L3 flips the gate back).
                    let fills = state.mem.warm_l3_fills - last_l3_fills;
                    let warmed = state.warmed - last_warmed;
                    last_l3_fills = state.mem.warm_l3_fills;
                    last_warmed = state.warmed;
                    converged =
                        warmed > 0 && fills * 1_000_000 < warmed * L3_CONVERGED_FILLS_PER_MI;
                }
            }
        }

        if std::env::var_os("ACIC_PHASE_TIMES").is_some() {
            eprintln!(
                "phase times: ff={:.3}s warm={:.3}s detailed={:.3}s (ff {} instrs, warmed {}, windows {})",
                state.t_ff, state.t_warm, state.t_detail, state.fastforwarded, state.warmed,
                windows.len()
            );
            eprintln!(
                "cycle loop ({:?}): executed {} of {} cycles ({:.1}% skipped)",
                timing_loop,
                state.executed_cycles,
                state.now,
                100.0 * (state.now.saturating_sub(state.executed_cycles)) as f64
                    / state.now.max(1) as f64
            );
        }
        if std::env::var_os("ACIC_ENGINE_DEBUG").is_some() {
            for (i, w) in windows.iter().enumerate() {
                eprintln!(
                    "window {i}: instrs={} cycles={} ipc={:.3} mpki={:.3}",
                    w.instructions,
                    w.cycles,
                    w.instructions as f64 / w.cycles as f64,
                    w.full_demand_misses as f64 * 1000.0 / w.full_instructions.max(1) as f64
                );
            }
        }
        Self::assemble_report(cfg, workload.name(), schedule, state, &windows)
    }

    fn assemble_report(
        cfg: &SimConfig,
        app: &str,
        schedule: SampleSchedule,
        state: WindowCheckpoint<'_>,
        windows: &[WindowSample],
    ) -> SimReport {
        let acic = state
            .contents
            .as_any()
            .downcast_ref::<AcicIcache>()
            .map(|a| *a.acic_stats());
        let cshr = state
            .contents
            .as_any()
            .downcast_ref::<AcicIcache>()
            .map(|a| a.cshr_stats());
        let cshr_lifetimes = state
            .contents
            .as_any()
            .downcast_ref::<AcicIcache>()
            .and_then(|a| a.unbounded_cshr())
            .map(|u| u.fractions_with_unresolved());

        let mut report = SimReport {
            app: app.to_string(),
            org: cfg.icache_org.label().to_string(),
            total_instructions: state.backend.retired,
            total_cycles: state.now,
            measured_instructions: state.backend.retired,
            measured_cycles: state.now,
            l1i: state.contents.stats(),
            l1d: state.mem.l1d_stats(),
            l2: state.mem.l2_stats(),
            l3: state.mem.l3_stats(),
            dram_accesses: state.mem.dram_accesses,
            branch: state.frontend.stats(),
            prefetch: state.prefetch_stats,
            context_switches: state.context_switches,
            acic,
            cshr,
            cshr_lifetimes,
            sampled: None,
            window_ipc: Vec::new(),
            window_mpki: Vec::new(),
        };

        match schedule {
            SampleSchedule::Full => {
                let (warm_cycle, warm_retired, warm_l1i) =
                    state.warm_snapshot.unwrap_or((0, 0, CacheStats::default()));
                report.measured_instructions = state.backend.retired - warm_retired;
                report.measured_cycles = state.now - warm_cycle;
                report.l1i = report.l1i.delta_from(&warm_l1i);
            }
            SampleSchedule::Periodic { .. } => {
                // The trace really ran start to finish; report the
                // population size, with cycles extrapolated.
                let total = state.consumed;
                let pooled = pool_windows(windows, total, state.warmed, state.fastforwarded);
                report.total_instructions = total;
                report.total_cycles = pooled.0.round() as u64;
                report.measured_instructions = pooled.1;
                report.measured_cycles = pooled.2;
                report.sampled = Some(pooled.3);
                report.window_ipc = pooled.4;
                report.window_mpki = pooled.5;
            }
        }
        report
    }
}

/// Pools detailed-window samples into the SMARTS estimators.
///
/// Shared verbatim between the serial schedule's report assembly and
/// the window-parallel reducer ([`window`]) so the two extrapolations
/// cannot drift: given the same window samples in the same canonical
/// order and the same population size, both modes produce bit-identical
/// pooled statistics. Returns
/// `(est_total_cycles, detailed_instructions, detailed_cycles, stats,
/// ipc_samples, mpki_samples)` — the trailing per-window sample
/// vectors (canonical window order, dead windows excluded) feed
/// [`SimReport::window_ipc`]/[`SimReport::window_mpki`] for paired
/// cross-configuration comparisons.
fn pool_windows(
    windows: &[WindowSample],
    total: u64,
    warmed: u64,
    fastforwarded: u64,
) -> (f64, u64, Cycle, SampledStats, Vec<f64>, Vec<f64>) {
    let detailed_instructions: u64 = windows.iter().map(|w| w.instructions).sum();
    let detailed_cycles: Cycle = windows.iter().map(|w| w.cycles).sum();
    let full_instructions: u64 = windows.iter().map(|w| w.full_instructions).sum();
    let detailed_misses: u64 = windows.iter().map(|w| w.full_demand_misses).sum();
    let ipc_samples: Vec<f64> = windows
        .iter()
        .filter(|w| w.cycles > 0)
        .map(|w| w.instructions as f64 / w.cycles as f64)
        .collect();
    let mpki_samples: Vec<f64> = windows
        .iter()
        .filter(|w| w.full_instructions > 0)
        .map(|w| w.full_demand_misses as f64 * 1000.0 / w.full_instructions as f64)
        .collect();
    let (ipc_mean, ipc_ci95) = mean_ci95(&ipc_samples);
    let (mpki_mean, mpki_ci95) = mean_ci95(&mpki_samples);
    let ipc_hat = if detailed_cycles > 0 {
        detailed_instructions as f64 / detailed_cycles as f64
    } else {
        0.0
    };
    let mpki_hat = if full_instructions > 0 {
        detailed_misses as f64 * 1000.0 / full_instructions as f64
    } else {
        0.0
    };
    let est_total_cycles = if ipc_hat > 0.0 {
        total as f64 / ipc_hat
    } else {
        0.0
    };
    let stats = SampledStats {
        windows: windows.len() as u64,
        detailed_instructions,
        warmup_instructions: warmed,
        fastforward_instructions: fastforwarded,
        ipc_mean,
        ipc_ci95,
        mpki_mean,
        mpki_ci95,
        est_total_cycles,
        est_total_misses: mpki_hat * total as f64 / 1000.0,
    };
    (
        est_total_cycles,
        detailed_instructions,
        detailed_cycles,
        stats,
        ipc_samples,
        mpki_samples,
    )
}

#[cfg(test)]
mod pool_tests {
    use super::*;

    fn w(instructions: u64, cycles: Cycle, full: u64, misses: u64) -> WindowSample {
        WindowSample {
            instructions,
            cycles,
            full_instructions: full,
            full_demand_misses: misses,
        }
    }

    #[test]
    fn zero_instruction_interiors_are_excluded_not_nan() {
        // A window whose interior retired nothing (trace ended inside
        // the ramp, or a pathological schedule) contributes no IPC or
        // MPKI sample — it must not poison the pooled estimators with
        // 0/0.
        let windows = [w(100, 50, 110, 3), w(0, 0, 0, 0), w(100, 40, 105, 2)];
        let (est, detailed, cycles, stats, ipc_s, mpki_s) = pool_windows(&windows, 10_000, 0, 0);
        // Dead windows are excluded from the sample vectors too.
        assert_eq!(ipc_s.len(), 2);
        assert_eq!(mpki_s.len(), 2);
        assert!(!est.is_nan());
        assert_eq!(detailed, 200);
        assert_eq!(cycles, 90);
        assert!(!stats.ipc_mean.is_nan() && !stats.ipc_ci95.is_nan());
        assert!(!stats.mpki_mean.is_nan() && !stats.mpki_ci95.is_nan());
        // Two live samples pooled: (2.0 + 2.5) / 2.
        assert!((stats.ipc_mean - 2.25).abs() < 1e-12);
        // The dead window still counts toward `windows` (schedule
        // shape), so interval accessors stay honest about sample
        // counts.
        assert_eq!(stats.windows, 3);
    }

    #[test]
    fn all_dead_windows_pool_to_zero_not_nan() {
        let windows = [w(0, 0, 0, 0), w(0, 0, 0, 0)];
        let (est, _, _, stats, ipc_s, _) = pool_windows(&windows, 1_000, 0, 0);
        assert!(ipc_s.is_empty());
        assert_eq!(est, 0.0);
        assert_eq!(stats.ipc_mean, 0.0);
        assert_eq!(stats.est_total_misses, 0.0);
        assert!(!stats.mpki_ci95.is_nan());
    }
}

//! Trace-driven cycle-level CPU simulator (the paper's Tejas
//! substitute).
//!
//! The model follows Table II: a 6-wide decoupled front end with a
//! 24-entry Fetch Target Queue, TAGE + an 8192-entry BTB, a 60-entry
//! decode queue, a 352-entry ROB retiring 6/cycle, and a
//! L1i/L1d/L2/L3/DRAM hierarchy with MSHR-limited outstanding misses.
//! It is trace driven: wrong-path instructions are not simulated;
//! mispredictions stall the branch-prediction unit until the branch
//! resolves in the backend (the standard trace-driven approximation).
//!
//! The L1i contents are pluggable ([`IcacheOrg`]) so every
//! organization the paper compares — replacement policies, bypass
//! policies, victim caches, and ACIC — runs under identical timing.
//!
//! # Examples
//!
//! ```
//! use acic_sim::{IcacheOrg, PrefetcherKind, SimConfig, Simulator};
//! use acic_workloads::{AppProfile, SyntheticWorkload};
//!
//! let wl = SyntheticWorkload::with_instructions(AppProfile::sibench(), 50_000);
//! let cfg = SimConfig {
//!     icache_org: IcacheOrg::Lru,
//!     prefetcher: PrefetcherKind::Fdp,
//!     ..SimConfig::default()
//! };
//! let report = Simulator::run(&cfg, &wl);
//! assert!(report.ipc() > 0.0);
//! assert!(report.l1i_mpki() >= 0.0);
//! ```

pub mod backend;
pub mod branch;
pub mod config;
pub mod engine;
pub mod frontend;
pub mod functional;
pub mod icache;
pub mod mem;
pub mod prefetch;
pub mod report;
pub mod simulator;

pub use branch::btb::Btb;
pub use branch::tage::Tage;
pub use config::{BranchSwitchMode, PrefetcherKind, SampleSchedule, SimConfig};
pub use engine::window::{PlannedWindow, WarmPolicy, WindowPlan};
pub use engine::{Engine, Phase, TimingLoop};
pub use frontend::{FrontEnd, Ftq, FtqEntry, InstrArena};
pub use functional::{run_functional, run_unbatched, FunctionalReport};
pub use icache::IcacheOrg;
pub use report::{mean_ci95, BranchStats, PrefetchStats, SampledStats, SimReport};
pub use simulator::Simulator;

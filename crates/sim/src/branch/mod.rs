//! Branch prediction: TAGE direction prediction and an 8192-entry
//! BTB, per Table II. Returns are predicted with an idealized return
//! address stack (call depth in the synthetic workloads is small and
//! real RAS mispredictions are negligible there; documented in
//! DESIGN.md).

pub mod btb;
pub mod tage;

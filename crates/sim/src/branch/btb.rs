//! Branch target buffer: 8192 entries, 4-way (Table II).

use acic_types::{Addr, LruStamps};

/// BTB statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// Lookups for taken branches.
    pub lookups: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Lookups whose stored target was wrong (indirect target
    /// changes).
    pub wrong_target: u64,
}

impl BtbStats {
    /// Adds another instance's counters into this one.
    pub fn merge(&mut self, other: &BtbStats) {
        self.lookups += other.lookups;
        self.misses += other.misses;
        self.wrong_target += other.wrong_target;
    }
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Entry {
    tag: u64,
    target: u64,
    valid: bool,
}

/// A set-associative branch target buffer.
///
/// # Examples
///
/// ```
/// use acic_sim::Btb;
/// use acic_types::Addr;
///
/// let mut btb = Btb::new(8192, 4);
/// let pc = Addr::new(0x1000);
/// assert_eq!(btb.lookup(pc), None);
/// btb.update(pc, Addr::new(0x2000));
/// assert_eq!(btb.lookup(pc), Some(Addr::new(0x2000)));
/// ```
#[derive(Debug)]
pub struct Btb {
    sets: usize,
    ways: usize,
    entries: Vec<Entry>,
    lru: Vec<LruStamps>,
    stats: BtbStats,
    stats_enabled: bool,
}

impl Btb {
    /// Creates a BTB with `entries` total entries and `ways`
    /// associativity.
    ///
    /// # Panics
    ///
    /// Panics unless `entries / ways` is a positive power of two.
    pub fn new(entries: usize, ways: usize) -> Self {
        assert!(ways > 0 && entries.is_multiple_of(ways));
        let sets = entries / ways;
        assert!(sets.is_power_of_two() && sets > 0);
        Btb {
            sets,
            ways,
            entries: vec![Entry::default(); entries],
            lru: (0..sets).map(|_| LruStamps::new(ways)).collect(),
            stats: BtbStats::default(),
            stats_enabled: true,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BtbStats {
        self.stats
    }

    /// Gates statistics recording (warmup phase of a sampled
    /// simulation): lookups still touch LRU state and updates still
    /// install targets, but the counters hold still.
    pub fn set_stats_enabled(&mut self, enabled: bool) {
        self.stats_enabled = enabled;
    }

    /// Invalidates every entry while keeping the accumulated
    /// statistics — a context switch with untagged BTB hardware.
    pub fn flush(&mut self) {
        self.entries.fill(Entry::default());
        self.lru = (0..self.sets).map(|_| LruStamps::new(self.ways)).collect();
    }

    fn set_of(&self, pc: Addr) -> usize {
        ((pc.raw() >> 2) as usize) & (self.sets - 1)
    }

    fn tag_of(&self, pc: Addr) -> u64 {
        pc.raw() >> 2 >> self.sets.trailing_zeros()
    }

    /// Looks up the predicted target for the branch at `pc`
    /// (recording stats).
    pub fn lookup(&mut self, pc: Addr) -> Option<Addr> {
        if self.stats_enabled {
            self.stats.lookups += 1;
        }
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        for w in 0..self.ways {
            let e = self.entries[set * self.ways + w];
            if e.valid && e.tag == tag {
                self.lru[set].touch(w);
                return Some(Addr::new(e.target));
            }
        }
        if self.stats_enabled {
            self.stats.misses += 1;
        }
        None
    }

    /// Records a wrong-target event (indirect branch retargeting).
    pub fn record_wrong_target(&mut self) {
        if self.stats_enabled {
            self.stats.wrong_target += 1;
        }
    }

    /// Installs or updates the target for the branch at `pc`.
    pub fn update(&mut self, pc: Addr, target: Addr) {
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        // Update in place if present.
        for w in 0..self.ways {
            let i = set * self.ways + w;
            if self.entries[i].valid && self.entries[i].tag == tag {
                self.entries[i].target = target.raw();
                self.lru[set].touch(w);
                return;
            }
        }
        // Fill an invalid way or evict the LRU one.
        let way = (0..self.ways)
            .find(|&w| !self.entries[set * self.ways + w].valid)
            .unwrap_or_else(|| self.lru[set].lru_way());
        self.entries[set * self.ways + way] = Entry {
            tag,
            target: target.raw(),
            valid: true,
        };
        self.lru[set].touch(way);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_then_hit() {
        let mut b = Btb::new(64, 4);
        b.update(Addr::new(0x40), Addr::new(0x80));
        assert_eq!(b.lookup(Addr::new(0x40)), Some(Addr::new(0x80)));
        assert_eq!(b.stats().misses, 0);
    }

    #[test]
    fn retarget_updates_in_place() {
        let mut b = Btb::new(64, 4);
        b.update(Addr::new(0x40), Addr::new(0x80));
        b.update(Addr::new(0x40), Addr::new(0xc0));
        assert_eq!(b.lookup(Addr::new(0x40)), Some(Addr::new(0xc0)));
    }

    #[test]
    fn conflict_eviction_is_lru() {
        let mut b = Btb::new(4, 2); // 2 sets x 2 ways
                                    // These three PCs map to the same set (stride = sets * 4 = 8).
        let pcs = [0x0u64, 0x8, 0x10];
        b.update(Addr::new(pcs[0]), Addr::new(1 << 6));
        b.update(Addr::new(pcs[1]), Addr::new(2 << 6));
        b.lookup(Addr::new(pcs[0])); // refresh pcs[0]
        b.update(Addr::new(pcs[2]), Addr::new(3 << 6));
        assert_eq!(b.lookup(Addr::new(pcs[0])), Some(Addr::new(1 << 6)));
        assert_eq!(b.lookup(Addr::new(pcs[1])), None, "LRU entry evicted");
    }

    #[test]
    fn table_two_shape_is_constructible() {
        let b = Btb::new(8192, 4);
        assert_eq!(b.sets, 2048);
    }
}

//! TAGE — tagged geometric-history-length branch direction predictor
//! (Seznec & Michaud, JILP 2006), the paper's Table II predictor.
//!
//! A compact four-table implementation: a bimodal base plus four
//! tagged tables with geometric history lengths and incrementally
//! folded history registers. Predictions and updates happen together
//! (trace-driven "perfect update timing").

use acic_types::hash::mix64;
use acic_types::{Addr, SatCounter};

/// Geometric history lengths of the tagged tables.
const HIST_LENS: [u32; 4] = [5, 15, 44, 130];
/// log2(entries) of each tagged table.
const TABLE_BITS: u32 = 10;
/// Tag width.
const TAG_BITS: u32 = 9;
/// log2(entries) of the bimodal base table.
const BIMODAL_BITS: u32 = 12;
/// Global history buffer length (>= max history length).
const GHIST_LEN: usize = 256;

/// An incrementally folded history register (classic TAGE trick:
/// fold an `orig_len`-bit history into `comp_len` bits in O(1) per
/// update).
#[derive(Clone, Debug)]
struct Folded {
    value: u32,
    orig_len: u32,
    comp_len: u32,
}

impl Folded {
    fn new(orig_len: u32, comp_len: u32) -> Self {
        Folded {
            value: 0,
            orig_len,
            comp_len,
        }
    }

    fn update(&mut self, new_bit: bool, dropped_bit: bool) {
        let mask = (1u32 << self.comp_len) - 1;
        self.value = ((self.value << 1) | new_bit as u32)
            ^ ((self.value >> (self.comp_len - 1)) & 1)
            ^ ((dropped_bit as u32) << (self.orig_len % self.comp_len));
        self.value &= mask;
    }
}

#[derive(Clone, Copy, Debug)]
struct TageEntry {
    tag: u16,
    ctr: SatCounter,
    useful: SatCounter,
}

impl Default for TageEntry {
    fn default() -> Self {
        TageEntry {
            tag: 0,
            ctr: SatCounter::new(3, 4),
            useful: SatCounter::new(2, 0),
        }
    }
}

#[derive(Clone, Debug)]
struct TageTable {
    entries: Vec<TageEntry>,
    folded_idx: Folded,
    folded_tag: Folded,
}

/// Branch-direction statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TageStats {
    /// Conditional branches predicted.
    pub predictions: u64,
    /// Direction mispredictions.
    pub mispredictions: u64,
}

impl TageStats {
    /// Adds another instance's counters into this one.
    pub fn merge(&mut self, other: &TageStats) {
        self.predictions += other.predictions;
        self.mispredictions += other.mispredictions;
    }

    /// Prediction accuracy (1.0 when nothing was predicted).
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            1.0
        } else {
            1.0 - self.mispredictions as f64 / self.predictions as f64
        }
    }
}

/// The TAGE predictor.
///
/// # Examples
///
/// ```
/// use acic_sim::Tage;
/// use acic_types::Addr;
///
/// let mut tage = Tage::new();
/// let pc = Addr::new(0x400);
/// // A strongly biased branch becomes predictable quickly.
/// for _ in 0..64 {
///     tage.predict_and_train(pc, true);
/// }
/// assert!(tage.stats().accuracy() > 0.9);
/// ```
#[derive(Debug)]
pub struct Tage {
    bimodal: Vec<SatCounter>,
    tables: Vec<TageTable>,
    ghist: Vec<bool>, // ring buffer, newest at head
    head: usize,
    stats: TageStats,
    stats_enabled: bool,
    alloc_tick: u64,
}

impl Default for Tage {
    fn default() -> Self {
        Self::new()
    }
}

impl Tage {
    /// Creates the predictor with Table II-scale state.
    pub fn new() -> Self {
        Tage {
            bimodal: vec![SatCounter::new(2, 1); 1 << BIMODAL_BITS],
            tables: HIST_LENS
                .iter()
                .map(|&len| TageTable {
                    entries: vec![TageEntry::default(); 1 << TABLE_BITS],
                    folded_idx: Folded::new(len, TABLE_BITS),
                    folded_tag: Folded::new(len, TAG_BITS),
                })
                .collect(),
            ghist: vec![false; GHIST_LEN],
            head: 0,
            stats: TageStats::default(),
            stats_enabled: true,
            alloc_tick: 0,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TageStats {
        self.stats
    }

    /// Gates statistics recording (warmup phase of a sampled
    /// simulation): predictions still train every table, but the
    /// accuracy counters hold still.
    pub fn set_stats_enabled(&mut self, enabled: bool) {
        self.stats_enabled = enabled;
    }

    /// Drops all learned state (tables, histories) while keeping the
    /// accumulated statistics — a context switch with untagged
    /// predictor hardware.
    pub fn flush(&mut self) {
        let stats = self.stats;
        let stats_enabled = self.stats_enabled;
        *self = Tage::new();
        self.stats = stats;
        self.stats_enabled = stats_enabled;
    }

    fn index(&self, t: usize, pc: Addr) -> usize {
        let pch = (mix64(pc.raw()) >> 2) as u32;
        ((pch ^ self.tables[t].folded_idx.value) & ((1 << TABLE_BITS) - 1)) as usize
    }

    fn tag(&self, t: usize, pc: Addr) -> u16 {
        let pch = (mix64(pc.raw() ^ 0x7ab1) >> 3) as u32;
        ((pch ^ self.tables[t].folded_tag.value) & ((1 << TAG_BITS) - 1)) as u16
    }

    fn bimodal_index(&self, pc: Addr) -> usize {
        (pc.raw() >> 2) as usize & ((1 << BIMODAL_BITS) - 1)
    }

    /// Predicts the direction of the conditional branch at `pc`,
    /// trains with the actual outcome, and returns whether the
    /// prediction was correct.
    pub fn predict_and_train(&mut self, pc: Addr, taken: bool) -> bool {
        // Find provider (longest history with matching tag) and
        // alternate prediction.
        let mut provider: Option<usize> = None;
        let mut alt: Option<usize> = None;
        for t in (0..self.tables.len()).rev() {
            let idx = self.index(t, pc);
            if self.tables[t].entries[idx].tag == self.tag(t, pc) {
                if provider.is_none() {
                    provider = Some(t);
                } else {
                    alt = Some(t);
                    break;
                }
            }
        }
        let bi = self.bimodal_index(pc);
        let alt_pred = match alt {
            Some(t) => {
                let idx = self.index(t, pc);
                self.tables[t].entries[idx].ctr.is_high()
            }
            None => self.bimodal[bi].is_high(),
        };
        let pred = match provider {
            Some(t) => {
                let idx = self.index(t, pc);
                self.tables[t].entries[idx].ctr.is_high()
            }
            None => alt_pred,
        };
        let correct = pred == taken;
        if self.stats_enabled {
            self.stats.predictions += 1;
            if !correct {
                self.stats.mispredictions += 1;
            }
        }

        // Update provider (or bimodal).
        match provider {
            Some(t) => {
                let idx = self.index(t, pc);
                let entry = &mut self.tables[t].entries[idx];
                entry.ctr.update(taken);
                if pred != alt_pred {
                    entry.useful.update(correct);
                }
            }
            None => self.bimodal[bi].update(taken),
        }

        // Allocate a longer entry on misprediction.
        if !correct {
            let start = provider.map_or(0, |t| t + 1);
            let mut allocated = false;
            for t in start..self.tables.len() {
                let idx = self.index(t, pc);
                let tag = self.tag(t, pc);
                let entry = &mut self.tables[t].entries[idx];
                if entry.useful.is_min() {
                    *entry = TageEntry {
                        tag,
                        ctr: SatCounter::new(3, if taken { 4 } else { 3 }),
                        useful: SatCounter::new(2, 0),
                    };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                // Decay usefulness so future allocations succeed.
                for t in start..self.tables.len() {
                    let idx = self.index(t, pc);
                    self.tables[t].entries[idx].useful.decrement();
                }
            }
            self.alloc_tick += 1;
        }

        self.push_history(taken);
        correct
    }

    /// Advances the global history by one outcome bit.
    fn push_history(&mut self, taken: bool) {
        // Dropped bits per table are the bits falling off each
        // geometric window: with the newest bit at `head`, a window of
        // length L spans [head-L+1, head], so the bit dropped when a
        // new one arrives sits at head-(L-1).
        for (t, &len) in HIST_LENS.iter().enumerate() {
            let dropped = self.ghist[(self.head + GHIST_LEN - (len as usize - 1)) % GHIST_LEN];
            self.tables[t].folded_idx.update(taken, dropped);
            self.tables[t].folded_tag.update(taken, dropped);
        }
        self.head = (self.head + 1) % GHIST_LEN;
        self.ghist[self.head] = taken;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_branches_are_easy() {
        let mut t = Tage::new();
        for i in 0..2000u64 {
            t.predict_and_train(Addr::new(0x100 + (i % 8) * 4), true);
        }
        assert!(t.stats().accuracy() > 0.95, "{:?}", t.stats());
    }

    #[test]
    fn alternating_pattern_is_learned() {
        let mut t = Tage::new();
        let pc = Addr::new(0x200);
        let mut correct_late = 0;
        for i in 0..2000u64 {
            let taken = i % 2 == 0;
            let ok = t.predict_and_train(pc, taken);
            if i >= 1000 && ok {
                correct_late += 1;
            }
        }
        assert!(correct_late > 900, "late accuracy {correct_late}/1000");
    }

    #[test]
    fn long_period_pattern_uses_long_history() {
        // Period-20 pattern: bimodal can't learn it; tagged tables
        // with >=15-bit history can.
        let mut t = Tage::new();
        let pc = Addr::new(0x300);
        let mut correct_late = 0;
        for i in 0..6000u64 {
            let taken = (i % 20) < 3;
            let ok = t.predict_and_train(pc, taken);
            if i >= 4000 && ok {
                correct_late += 1;
            }
        }
        assert!(correct_late > 1700, "late accuracy {correct_late}/2000");
    }

    #[test]
    fn random_branches_are_hard() {
        let mut t = Tage::new();
        let mut x: u64 = 42;
        let mut wrong = 0;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if !t.predict_and_train(Addr::new(0x400), (x >> 62) & 1 == 1) {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / 4000.0;
        assert!(rate > 0.3, "random stream mispredict rate {rate}");
    }

    #[test]
    fn folded_history_stays_in_range() {
        let mut f = Folded::new(130, 10);
        let mut x: u64 = 3;
        for _ in 0..10_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            f.update(x & 1 == 1, (x >> 1) & 1 == 1);
            assert!(f.value < (1 << 10));
        }
    }
}

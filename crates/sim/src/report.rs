//! Simulation reports: everything the experiment harness needs to
//! regenerate the paper's tables and figures.

use crate::branch::btb::BtbStats;
use crate::branch::tage::TageStats;
use acic_cache::CacheStats;
use acic_core::{AcicStats, CshrStats};
use acic_types::Cycle;

/// Front-end branch statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Total control-flow mispredictions (conditional + indirect).
    pub mispredicts: u64,
    /// TAGE direction-prediction statistics.
    pub tage: TageStats,
    /// BTB statistics.
    pub btb: BtbStats,
}

impl BranchStats {
    /// Adds another instance's counters into this one.
    pub fn merge(&mut self, other: &BranchStats) {
        self.mispredicts += other.mispredicts;
        self.tage.merge(&other.tage);
        self.btb.merge(&other.btb);
    }
}

/// Prefetch statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetches issued to the hierarchy.
    pub issued: u64,
    /// Prefetch candidates dropped (already resident / in flight /
    /// MSHRs full).
    pub filtered: u64,
}

impl PrefetchStats {
    /// Adds another instance's counters into this one.
    pub fn merge(&mut self, other: &PrefetchStats) {
        self.issued += other.issued;
        self.filtered += other.filtered;
    }
}

/// Sample mean and its 95% confidence half-width.
///
/// The half-width is the normal-approximation interval
/// `1.96 * s / sqrt(n)` with `s` the Bessel-corrected sample standard
/// deviation — the SMARTS-style per-metric error bar for systematic
/// sampling. Returns `(mean, 0.0)` for fewer than two samples (no
/// variance estimate exists) and `(0.0, 0.0)` for none.
pub fn mean_ci95(samples: &[f64]) -> (f64, f64) {
    let n = samples.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
    (mean, 1.96 * (var / n as f64).sqrt())
}

/// Extrapolation of a sampled run's detailed windows to the whole
/// trace, with per-metric confidence intervals.
///
/// Population estimates treat each detailed window as one sample of a
/// systematic design: `est_total_cycles = N / ipc_hat` where
/// `ipc_hat` is the pooled IPC over all windows and `N` the full
/// instruction count; `est_total_misses = mpki_hat * N / 1000`
/// likewise. The `*_mean`/`*_ci95` pairs are per-window statistics
/// from [`mean_ci95`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SampledStats {
    /// Detailed windows measured.
    pub windows: u64,
    /// Instructions simulated at detailed fidelity.
    pub detailed_instructions: u64,
    /// Instructions spent in functional warmup.
    pub warmup_instructions: u64,
    /// Instructions fast-forwarded (no simulator state touched).
    pub fastforward_instructions: u64,
    /// Mean per-window IPC.
    pub ipc_mean: f64,
    /// 95% confidence half-width of the per-window IPC.
    pub ipc_ci95: f64,
    /// Mean per-window L1i demand MPKI.
    pub mpki_mean: f64,
    /// 95% confidence half-width of the per-window MPKI.
    pub mpki_ci95: f64,
    /// Whole-trace cycle estimate (`total_instructions / ipc_hat`).
    pub est_total_cycles: f64,
    /// Whole-trace L1i demand-miss estimate.
    pub est_total_misses: f64,
}

impl SampledStats {
    /// 95% confidence half-width of the per-window IPC, or `None`
    /// when fewer than two windows were measured.
    ///
    /// With a single window no variance estimate exists — the stored
    /// `ipc_ci95` is `0.0` by [`mean_ci95`]'s convention, which would
    /// read as *perfect* confidence. Interval consumers (the DSE
    /// pruner) must treat `None` as an unbounded interval, never as a
    /// tight one; this accessor makes that distinction typed instead
    /// of convention.
    pub fn ipc_half_width(&self) -> Option<f64> {
        (self.windows >= 2).then_some(self.ipc_ci95)
    }

    /// 95% confidence half-width of the per-window MPKI, or `None`
    /// when fewer than two windows were measured (see
    /// [`SampledStats::ipc_half_width`]).
    pub fn mpki_half_width(&self) -> Option<f64> {
        (self.windows >= 2).then_some(self.mpki_ci95)
    }
}

/// Result of one simulation run.
///
/// Statistics prefixed `measured_` exclude the warm-up window
/// (§IV-A: the first 10% of instructions); `total_` fields cover the
/// whole run.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Workload name.
    pub app: String,
    /// L1i organization label.
    pub org: String,
    /// Total instructions retired.
    pub total_instructions: u64,
    /// Total cycles.
    pub total_cycles: Cycle,
    /// Instructions counted after warm-up.
    pub measured_instructions: u64,
    /// Cycles counted after warm-up.
    pub measured_cycles: Cycle,
    /// L1i statistics after warm-up.
    pub l1i: CacheStats,
    /// L1d statistics (whole run).
    pub l1d: CacheStats,
    /// L2 statistics (whole run).
    pub l2: CacheStats,
    /// L3 statistics (whole run).
    pub l3: CacheStats,
    /// DRAM accesses (whole run).
    pub dram_accesses: u64,
    /// Branch statistics (whole run).
    pub branch: BranchStats,
    /// Prefetch statistics (whole run).
    pub prefetch: PrefetchStats,
    /// Context switches observed at the fetch stage (whole run; 0 for
    /// single-tenant traces).
    pub context_switches: u64,
    /// ACIC-specific statistics, when the organization is ACIC.
    pub acic: Option<AcicStats>,
    /// CSHR statistics, when the organization is ACIC.
    pub cshr: Option<CshrStats>,
    /// Figure-6 lifetime histogram fractions, when unbounded-CSHR
    /// instrumentation was enabled.
    pub cshr_lifetimes: Option<[f64; acic_core::cshr::LIFETIME_BUCKETS]>,
    /// Sampled-run extrapolation, when the engine ran a
    /// [`crate::SampleSchedule::Periodic`] schedule. `None` for a
    /// `Full` run (whose report is exact, not estimated). In a
    /// sampled report the `measured_*` fields cover the measured
    /// window interiors, the statistics blocks cover everything
    /// simulated at detailed fidelity (interiors plus ramp/drain
    /// edges), and `total_cycles` holds the rounded whole-trace
    /// extrapolation.
    pub sampled: Option<SampledStats>,
    /// Per-window IPC samples of a sampled run, in canonical window
    /// order (empty for `Full` runs). Window boundaries are functions
    /// of the schedule and the trace alone, so two configurations run
    /// under the same schedule over the same frozen trace sample the
    /// *same* windows — which is what lets a consumer compare them
    /// pairwise (common random numbers), cancelling the
    /// workload-phase noise that dominates the pooled per-window
    /// variance.
    pub window_ipc: Vec<f64>,
    /// Per-window L1i demand MPKI samples, in canonical window order
    /// (empty for `Full` runs); see [`SimReport::window_ipc`].
    pub window_mpki: Vec<f64>,
}

impl SimReport {
    /// Post-warm-up instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.measured_cycles == 0 {
            0.0
        } else {
            self.measured_instructions as f64 / self.measured_cycles as f64
        }
    }

    /// Post-warm-up L1i demand misses per kilo-instruction.
    ///
    /// For a sampled run this is the pooled window estimator
    /// (`est_total_misses * 1000 / total_instructions`), keeping the
    /// metric consistent with the measured window interiors — the raw
    /// `l1i` block also counts the unmeasured ramp/drain traffic.
    pub fn l1i_mpki(&self) -> f64 {
        match &self.sampled {
            Some(s) if self.total_instructions > 0 => {
                s.est_total_misses * 1000.0 / self.total_instructions as f64
            }
            _ => self.l1i.mpki(self.measured_instructions),
        }
    }

    /// Speedup of this run over a baseline run of the same workload
    /// (ratio of post-warm-up cycles).
    ///
    /// When either report is sampled the comparison is the ratio of
    /// cycles-per-instruction over the measured windows: window
    /// boundaries are trace-aligned across organizations, but the
    /// interior snapshots land at retire granularity, so the
    /// instruction counts may differ by a few per window and an
    /// exact-window cycle ratio would be ill-defined.
    ///
    /// Zero-cycle edge cases are defined rather than dividing blind:
    /// two empty windows compare as `1.0` (equally fast), an empty
    /// window over a non-empty baseline is `f64::INFINITY`, and a
    /// non-empty window over an empty baseline is `0.0`. The result
    /// is always non-NaN.
    ///
    /// # Panics
    ///
    /// Panics if two *exact* (non-sampled) reports cover different
    /// instruction counts (they would not be comparable).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        if self.sampled.is_some() || baseline.sampled.is_some() {
            // Sampled windows are trace-determined, so two reports of
            // the same workload agree on the population to within
            // run-granularity noise; anything larger means the
            // reports are not comparable at all.
            let (a, b) = (self.total_instructions, baseline.total_instructions);
            assert!(
                a.abs_diff(b) * 100 <= a.max(b),
                "speedup requires reports over the same trace ({a} vs {b} instructions)"
            );
            let own = self.measured_cycles as f64 / self.measured_instructions.max(1) as f64;
            let base =
                baseline.measured_cycles as f64 / baseline.measured_instructions.max(1) as f64;
            return match (base == 0.0, own == 0.0) {
                (true, true) => 1.0,
                (false, true) => f64::INFINITY,
                (true, false) => 0.0,
                (false, false) => base / own,
            };
        }
        assert_eq!(
            self.measured_instructions, baseline.measured_instructions,
            "speedup requires identical instruction windows"
        );
        match (baseline.measured_cycles, self.measured_cycles) {
            (0, 0) => 1.0,
            (_, 0) => f64::INFINITY,
            (0, _) => 0.0,
            (b, s) => b as f64 / s as f64,
        }
    }

    /// MPKI reduction relative to a baseline (positive = fewer
    /// misses). A zero-MPKI baseline yields `0.0` — there is nothing
    /// to reduce, and the result stays non-NaN.
    pub fn mpki_reduction_over(&self, baseline: &SimReport) -> f64 {
        let b = baseline.l1i_mpki();
        if b == 0.0 {
            0.0
        } else {
            (b - self.l1i_mpki()) / b
        }
    }

    /// 95% confidence interval `(lo, hi)` on IPC.
    ///
    /// Exact (non-sampled) reports measure rather than estimate, so
    /// the interval is degenerate: `(ipc, ipc)`. Sampled reports with
    /// at least two windows return the per-window mean ± half-width,
    /// floored at zero (IPC is non-negative). A sampled report with
    /// fewer than two windows has no variance estimate — the interval
    /// is the whole non-negative line, `(0.0, f64::INFINITY)`, so a
    /// dominance test can never prune on it. Never NaN.
    pub fn ipc_interval(&self) -> (f64, f64) {
        match &self.sampled {
            None => {
                let v = self.ipc();
                (v, v)
            }
            Some(s) => match s.ipc_half_width() {
                Some(hw) => ((s.ipc_mean - hw).max(0.0), s.ipc_mean + hw),
                None => (0.0, f64::INFINITY),
            },
        }
    }

    /// 95% confidence interval `(lo, hi)` on L1i demand MPKI, with
    /// the same conventions as [`SimReport::ipc_interval`]: exact
    /// reports are degenerate, single-window sampled reports are
    /// unbounded, and the result is never NaN.
    pub fn mpki_interval(&self) -> (f64, f64) {
        match &self.sampled {
            None => {
                let v = self.l1i_mpki();
                (v, v)
            }
            Some(s) => match s.mpki_half_width() {
                Some(hw) => ((s.mpki_mean - hw).max(0.0), s.mpki_mean + hw),
                None => (0.0, f64::INFINITY),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, instrs: u64, misses: u64) -> SimReport {
        let l1i = CacheStats {
            demand_accesses: misses,
            demand_misses: misses,
            ..CacheStats::default()
        };
        SimReport {
            measured_cycles: cycles,
            measured_instructions: instrs,
            l1i,
            ..SimReport::default()
        }
    }

    #[test]
    fn ipc_and_mpki() {
        let r = report(1000, 2000, 10);
        assert!((r.ipc() - 2.0).abs() < 1e-12);
        assert!((r.l1i_mpki() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let fast = report(900, 2000, 5);
        let slow = report(1000, 2000, 10);
        assert!((fast.speedup_over(&slow) - 1000.0 / 900.0).abs() < 1e-12);
        assert!((fast.mpki_reduction_over(&slow) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "identical instruction windows")]
    fn mismatched_windows_panic() {
        let a = report(1, 100, 0);
        let b = report(1, 200, 0);
        let _ = a.speedup_over(&b);
    }

    #[test]
    fn zero_cycle_speedups_are_defined() {
        let empty = report(0, 0, 0);
        let busy = report(100, 0, 0);
        assert_eq!(empty.speedup_over(&empty), 1.0, "empty vs empty");
        assert_eq!(busy.speedup_over(&empty), 0.0, "baseline was empty");
        assert_eq!(empty.speedup_over(&busy), f64::INFINITY);
        assert!(!empty.speedup_over(&empty).is_nan());
    }

    #[test]
    fn zero_baseline_mpki_reduction_is_zero() {
        let clean = report(100, 1000, 0);
        let missy = report(100, 1000, 10);
        assert_eq!(missy.mpki_reduction_over(&clean), 0.0);
        assert_eq!(clean.mpki_reduction_over(&clean), 0.0);
        assert!((clean.mpki_reduction_over(&missy) - 1.0).abs() < 1e-12);
        assert!(!missy.mpki_reduction_over(&clean).is_nan());
    }

    #[test]
    fn mean_ci95_formula() {
        assert_eq!(mean_ci95(&[]), (0.0, 0.0));
        assert_eq!(mean_ci95(&[3.5]), (3.5, 0.0));
        let (m, ci) = mean_ci95(&[1.0, 2.0, 3.0, 4.0]);
        assert!((m - 2.5).abs() < 1e-12);
        // s = sqrt(5/3), ci = 1.96 * s / 2
        let s = (5.0f64 / 3.0).sqrt();
        assert!((ci - 1.96 * s / 2.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_field_defaults_to_none() {
        assert!(SimReport::default().sampled.is_none());
    }

    fn sampled_report(windows: u64, ipc: f64, ci: f64, mpki: f64, mci: f64) -> SimReport {
        SimReport {
            measured_cycles: 1000,
            measured_instructions: 2000,
            total_instructions: 10_000,
            sampled: Some(SampledStats {
                windows,
                ipc_mean: ipc,
                ipc_ci95: ci,
                mpki_mean: mpki,
                mpki_ci95: mci,
                ..SampledStats::default()
            }),
            ..SimReport::default()
        }
    }

    #[test]
    fn single_window_half_width_is_none_not_zero() {
        // One window: mean_ci95 stores 0.0, which would read as
        // perfect confidence. The typed accessor refuses.
        let s = sampled_report(1, 2.0, 0.0, 5.0, 0.0).sampled.unwrap();
        assert_eq!(s.ipc_half_width(), None);
        assert_eq!(s.mpki_half_width(), None);
        let s2 = sampled_report(2, 2.0, 0.3, 5.0, 0.7).sampled.unwrap();
        assert_eq!(s2.ipc_half_width(), Some(0.3));
        assert_eq!(s2.mpki_half_width(), Some(0.7));
    }

    #[test]
    fn single_window_intervals_are_unbounded_never_nan() {
        let r = sampled_report(1, 2.0, 0.0, 5.0, 0.0);
        assert_eq!(r.ipc_interval(), (0.0, f64::INFINITY));
        assert_eq!(r.mpki_interval(), (0.0, f64::INFINITY));
        let (lo, hi) = r.ipc_interval();
        assert!(!lo.is_nan() && !hi.is_nan());
        // Zero windows (degenerate schedule) likewise.
        let r0 = sampled_report(0, 0.0, 0.0, 0.0, 0.0);
        assert_eq!(r0.ipc_interval(), (0.0, f64::INFINITY));
        assert_eq!(r0.mpki_interval(), (0.0, f64::INFINITY));
    }

    #[test]
    fn multi_window_intervals_are_mean_plus_minus_half_width() {
        let r = sampled_report(8, 2.0, 0.25, 5.0, 1.5);
        assert_eq!(r.ipc_interval(), (1.75, 2.25));
        assert_eq!(r.mpki_interval(), (3.5, 6.5));
        // A wide CI never drives the lower bound negative.
        let wide = sampled_report(3, 0.5, 2.0, 0.1, 9.0);
        assert_eq!(wide.ipc_interval().0, 0.0);
        assert_eq!(wide.mpki_interval().0, 0.0);
    }

    #[test]
    fn exact_report_intervals_are_degenerate() {
        let r = report(1000, 2000, 10);
        assert_eq!(r.ipc_interval(), (2.0, 2.0));
        assert_eq!(r.mpki_interval(), (5.0, 5.0));
    }

    #[test]
    fn mean_ci95_never_nan_on_degenerate_inputs() {
        // Zero-instruction interiors are filtered out before pooling
        // (engine::pool_windows keeps only windows with cycles > 0 /
        // instructions > 0), so the estimator only ever sees finite
        // samples — but guard the codomain anyway: none of the edge
        // shapes may smuggle a NaN into a report.
        for samples in [&[][..], &[0.0][..], &[0.0, 0.0][..], &[1.0, 1.0, 1.0][..]] {
            let (m, ci) = mean_ci95(samples);
            assert!(!m.is_nan() && !ci.is_nan(), "samples {samples:?}");
        }
        // Identical samples: zero variance, zero half-width.
        assert_eq!(mean_ci95(&[2.0, 2.0, 2.0]), (2.0, 0.0));
    }
}

//! Simulation reports: everything the experiment harness needs to
//! regenerate the paper's tables and figures.

use crate::branch::btb::BtbStats;
use crate::branch::tage::TageStats;
use acic_cache::CacheStats;
use acic_core::{AcicStats, CshrStats};
use acic_types::Cycle;

/// Front-end branch statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct BranchStats {
    /// Total control-flow mispredictions (conditional + indirect).
    pub mispredicts: u64,
    /// TAGE direction-prediction statistics.
    pub tage: TageStats,
    /// BTB statistics.
    pub btb: BtbStats,
}

/// Prefetch statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct PrefetchStats {
    /// Prefetches issued to the hierarchy.
    pub issued: u64,
    /// Prefetch candidates dropped (already resident / in flight /
    /// MSHRs full).
    pub filtered: u64,
}

/// Result of one simulation run.
///
/// Statistics prefixed `measured_` exclude the warm-up window
/// (§IV-A: the first 10% of instructions); `total_` fields cover the
/// whole run.
#[derive(Clone, Debug, Default)]
pub struct SimReport {
    /// Workload name.
    pub app: String,
    /// L1i organization label.
    pub org: String,
    /// Total instructions retired.
    pub total_instructions: u64,
    /// Total cycles.
    pub total_cycles: Cycle,
    /// Instructions counted after warm-up.
    pub measured_instructions: u64,
    /// Cycles counted after warm-up.
    pub measured_cycles: Cycle,
    /// L1i statistics after warm-up.
    pub l1i: CacheStats,
    /// L1d statistics (whole run).
    pub l1d: CacheStats,
    /// L2 statistics (whole run).
    pub l2: CacheStats,
    /// L3 statistics (whole run).
    pub l3: CacheStats,
    /// DRAM accesses (whole run).
    pub dram_accesses: u64,
    /// Branch statistics (whole run).
    pub branch: BranchStats,
    /// Prefetch statistics (whole run).
    pub prefetch: PrefetchStats,
    /// Context switches observed at the fetch stage (whole run; 0 for
    /// single-tenant traces).
    pub context_switches: u64,
    /// ACIC-specific statistics, when the organization is ACIC.
    pub acic: Option<AcicStats>,
    /// CSHR statistics, when the organization is ACIC.
    pub cshr: Option<CshrStats>,
    /// Figure-6 lifetime histogram fractions, when unbounded-CSHR
    /// instrumentation was enabled.
    pub cshr_lifetimes: Option<[f64; acic_core::cshr::LIFETIME_BUCKETS]>,
}

impl SimReport {
    /// Post-warm-up instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.measured_cycles == 0 {
            0.0
        } else {
            self.measured_instructions as f64 / self.measured_cycles as f64
        }
    }

    /// Post-warm-up L1i demand misses per kilo-instruction.
    pub fn l1i_mpki(&self) -> f64 {
        self.l1i.mpki(self.measured_instructions)
    }

    /// Speedup of this run over a baseline run of the same workload
    /// (ratio of post-warm-up cycles).
    ///
    /// # Panics
    ///
    /// Panics if the two reports cover different instruction counts
    /// (they would not be comparable).
    pub fn speedup_over(&self, baseline: &SimReport) -> f64 {
        assert_eq!(
            self.measured_instructions, baseline.measured_instructions,
            "speedup requires identical instruction windows"
        );
        baseline.measured_cycles as f64 / self.measured_cycles as f64
    }

    /// MPKI reduction relative to a baseline (positive = fewer
    /// misses).
    pub fn mpki_reduction_over(&self, baseline: &SimReport) -> f64 {
        let b = baseline.l1i_mpki();
        if b == 0.0 {
            0.0
        } else {
            (b - self.l1i_mpki()) / b
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, instrs: u64, misses: u64) -> SimReport {
        let l1i = CacheStats {
            demand_accesses: misses,
            demand_misses: misses,
            ..CacheStats::default()
        };
        SimReport {
            measured_cycles: cycles,
            measured_instructions: instrs,
            l1i,
            ..SimReport::default()
        }
    }

    #[test]
    fn ipc_and_mpki() {
        let r = report(1000, 2000, 10);
        assert!((r.ipc() - 2.0).abs() < 1e-12);
        assert!((r.l1i_mpki() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let fast = report(900, 2000, 5);
        let slow = report(1000, 2000, 10);
        assert!((fast.speedup_over(&slow) - 1000.0 / 900.0).abs() < 1e-12);
        assert!((fast.mpki_reduction_over(&slow) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "identical instruction windows")]
    fn mismatched_windows_panic() {
        let a = report(1, 100, 0);
        let b = report(1, 200, 0);
        let _ = a.speedup_over(&b);
    }
}

//! Simulation parameters (Table II) and organization selection.

use crate::icache::IcacheOrg;

/// Which instruction prefetcher runs in front of the L1i.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PrefetcherKind {
    /// No instruction prefetching.
    None,
    /// Fetch-directed prefetching from the FTQ (the paper's baseline
    /// prefetcher, [31]).
    #[default]
    Fdp,
    /// The entangling prefetcher (§IV-H4, [76]).
    Entangling,
}

/// What the branch-prediction structures (BTB, TAGE, ITP) do when the
/// fetch stream crosses a context switch.
///
/// Single-tenant traces never switch, so either mode leaves them
/// bit-identical to the pre-ASID behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BranchSwitchMode {
    /// Flush all prediction state on every switch (hardware with
    /// untagged predictors — each tenant retrains from cold).
    #[default]
    Flush,
    /// Keep state and tag lookup keys with the ASID (predictor
    /// entries from different tenants coexist; no retrain cost, some
    /// capacity pressure).
    Tag,
}

/// How the engine distributes simulation fidelity over the trace
/// (SMARTS-style systematic sampling).
///
/// [`SampleSchedule::Full`] runs the whole trace at detailed fidelity
/// and reproduces the pre-sampling simulator bit for bit. A
/// [`SampleSchedule::Periodic`] schedule divides the trace into
/// periods of `period` instructions, each simulated as three phases:
///
/// ```text
/// |-- fast-forward --------------|-- warmup ----|-- detailed --|
///    period - warmup - detailed     warmup_len     detailed_len
/// ```
///
/// Fast-forward advances the trace without touching any simulator
/// state; warmup lets caches, predictors, and ACIC's admission
/// machinery learn with statistics gated off; detailed runs the full
/// cycle loop with statistics on. Reports from a periodic schedule
/// extrapolate the detailed windows to the whole trace
/// ([`crate::report::SampledStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SampleSchedule {
    /// Detailed simulation of every instruction (today's behavior).
    #[default]
    Full,
    /// Systematic sampling: one warmup+detailed window per `period`
    /// instructions.
    Periodic {
        /// Instructions per sampling period.
        period: u64,
        /// Functional-warming instructions before each detailed
        /// window.
        warmup_len: u64,
        /// Detailed-simulation instructions per window.
        detailed_len: u64,
    },
}

impl SampleSchedule {
    /// The documented default sampled schedule: 700 k-instruction
    /// periods with a 185 k warmup reheat and a 22 k detailed window.
    /// The ~493 k gap per period is *adaptive* fast-forward: the
    /// engine warms it functionally until the memory hierarchy
    /// converges (L3 warm-fill rate below
    /// [`crate::engine::L3_CONVERGED_FILLS_PER_MI`]) and only then
    /// starts skipping, so the deep L2/L3 state never goes stale
    /// while it still matters. On a 20 M-instruction detailed ACIC
    /// cell this holds MPKI and IPC within 2% of full detail at a
    /// ≥10× wall-clock win (asserted by `tests/sampled_sim.rs`,
    /// recorded in `BENCH_baseline.json`). Wider periods are faster
    /// but under-sample phase-varying traces; the `sampling_error`
    /// figure sweeps the trade-off.
    pub fn default_sampled() -> SampleSchedule {
        SampleSchedule::Periodic {
            period: 700_000,
            warmup_len: 185_000,
            detailed_len: 22_000,
        }
    }

    /// Whether this schedule samples (i.e. is not `Full`).
    pub fn is_sampled(&self) -> bool {
        !matches!(self, SampleSchedule::Full)
    }

    /// Validates the schedule's arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `detailed_len` is zero or `warmup_len +
    /// detailed_len` exceeds `period` (the period must fit both).
    pub fn validate(&self) {
        if let SampleSchedule::Periodic {
            period,
            warmup_len,
            detailed_len,
        } = self
        {
            assert!(*detailed_len > 0, "detailed_len must be positive");
            assert!(
                warmup_len.saturating_add(*detailed_len) <= *period,
                "warmup_len + detailed_len ({} + {}) exceeds period ({})",
                warmup_len,
                detailed_len,
                period
            );
        }
    }
}

/// Core and hierarchy parameters, defaulting to Table II.
///
/// # Examples
///
/// ```
/// use acic_sim::SimConfig;
///
/// let cfg = SimConfig::default();
/// assert_eq!(cfg.fetch_width, 6);
/// assert_eq!(cfg.rob_entries, 352);
/// assert_eq!(cfg.ftq_entries, 24);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Instructions fetched per cycle (Table II: 6-wide).
    pub fetch_width: u32,
    /// Fetch Target Queue entries (Table II: 24).
    pub ftq_entries: usize,
    /// Decode queue entries (Table II: 60).
    pub decode_queue_entries: usize,
    /// Instructions decoded/dispatched per cycle (Table II: 6-wide).
    pub decode_width: u32,
    /// Reorder buffer entries (Table II: 352).
    pub rob_entries: usize,
    /// Instructions retired per cycle.
    pub retire_width: u32,
    /// Front-end refill penalty after a resolved misprediction.
    pub redirect_penalty: u64,
    /// Bubble charged when a taken branch misses in the BTB.
    pub btb_miss_penalty: u64,
    /// L1i hit latency in cycles (pipelined; Table II: 4).
    pub l1i_hit_latency: u64,
    /// L1d hit latency in cycles (Table II: 5).
    pub l1d_hit_latency: u64,
    /// L2 hit latency (Table II: 15).
    pub l2_latency: u64,
    /// L3 hit latency (Table II: 35).
    pub l3_latency: u64,
    /// DRAM access latency (Table II: one DDR4-3200 channel).
    pub dram_latency: u64,
    /// Minimum spacing between DRAM accesses (bandwidth model).
    pub dram_gap: u64,
    /// L1i MSHRs (Table II: 16).
    pub l1i_mshrs: usize,
    /// L1d MSHRs (Table II: 16).
    pub l1d_mshrs: usize,
    /// Prefetches issued per cycle by FDP.
    pub prefetch_width: u32,
    /// Instruction prefetcher.
    pub prefetcher: PrefetcherKind,
    /// Branch-state behavior at context switches.
    pub branch_switch: BranchSwitchMode,
    /// L1i organization under test.
    pub icache_org: IcacheOrg,
    /// Fraction of the trace used for warm-up (stats excluded;
    /// §IV-A: first 10%).
    pub warmup_fraction: f64,
    /// Attach the reuse oracle even when the organization does not
    /// require it (enables ACIC's Figure-12a accuracy accounting).
    pub attach_oracle: bool,
    /// Enable unbounded-CSHR instrumentation (Figure 6; ACIC only).
    pub unbounded_cshr: bool,
    /// Fidelity schedule driving the engine's phase machine.
    /// [`SampleSchedule::Full`] (the default) reproduces the
    /// unsampled simulator bit for bit.
    pub schedule: SampleSchedule,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            fetch_width: 6,
            ftq_entries: 24,
            decode_queue_entries: 60,
            decode_width: 6,
            rob_entries: 352,
            retire_width: 6,
            redirect_penalty: 4,
            btb_miss_penalty: 2,
            l1i_hit_latency: 4,
            l1d_hit_latency: 5,
            l2_latency: 15,
            l3_latency: 35,
            dram_latency: 220,
            dram_gap: 8,
            l1i_mshrs: 16,
            l1d_mshrs: 16,
            prefetch_width: 2,
            prefetcher: PrefetcherKind::Fdp,
            branch_switch: BranchSwitchMode::Flush,
            icache_org: IcacheOrg::Lru,
            warmup_fraction: 0.10,
            attach_oracle: false,
            unbounded_cshr: false,
            schedule: SampleSchedule::Full,
        }
    }
}

impl SimConfig {
    /// Convenience: the same configuration with a different L1i
    /// organization.
    pub fn with_org(&self, org: IcacheOrg) -> SimConfig {
        SimConfig {
            icache_org: org,
            ..self.clone()
        }
    }

    /// Convenience: the same configuration with a different
    /// prefetcher.
    pub fn with_prefetcher(&self, prefetcher: PrefetcherKind) -> SimConfig {
        SimConfig {
            prefetcher,
            ..self.clone()
        }
    }

    /// Convenience: the same configuration with a different
    /// context-switch behavior for branch-prediction state.
    pub fn with_branch_switch(&self, branch_switch: BranchSwitchMode) -> SimConfig {
        SimConfig {
            branch_switch,
            ..self.clone()
        }
    }

    /// Convenience: the same configuration with a different fidelity
    /// schedule.
    pub fn with_schedule(&self, schedule: SampleSchedule) -> SimConfig {
        SimConfig {
            schedule,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_two() {
        let c = SimConfig::default();
        assert_eq!(c.decode_queue_entries, 60);
        assert_eq!(c.l1i_hit_latency, 4);
        assert_eq!(c.l1d_hit_latency, 5);
        assert_eq!(c.l2_latency, 15);
        assert_eq!(c.l3_latency, 35);
        assert_eq!(c.l1i_mshrs, 16);
        assert_eq!(c.warmup_fraction, 0.10);
    }

    #[test]
    fn with_org_preserves_other_fields() {
        let c = SimConfig::default().with_org(IcacheOrg::Opt);
        assert_eq!(c.icache_org, IcacheOrg::Opt);
        assert_eq!(c.rob_entries, 352);
    }

    #[test]
    fn default_schedule_is_full() {
        assert_eq!(SimConfig::default().schedule, SampleSchedule::Full);
        assert!(!SampleSchedule::Full.is_sampled());
        assert!(SampleSchedule::default_sampled().is_sampled());
        SampleSchedule::default_sampled().validate();
        SampleSchedule::Full.validate();
    }

    #[test]
    fn with_schedule_preserves_other_fields() {
        let c = SimConfig::default().with_schedule(SampleSchedule::default_sampled());
        assert!(c.schedule.is_sampled());
        assert_eq!(c.rob_entries, 352);
    }

    #[test]
    #[should_panic(expected = "exceeds period")]
    fn overfull_period_rejected() {
        SampleSchedule::Periodic {
            period: 100,
            warmup_len: 80,
            detailed_len: 30,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "detailed_len must be positive")]
    fn zero_detailed_rejected() {
        SampleSchedule::Periodic {
            period: 100,
            warmup_len: 10,
            detailed_len: 0,
        }
        .validate();
    }
}

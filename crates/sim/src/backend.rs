//! The backend: decode queue, ROB, execution latencies and in-order
//! retirement.
//!
//! Deliberately simple (DESIGN.md §6): instructions dispatch in order
//! into the ROB, complete after a latency (loads consult the memory
//! hierarchy), and retire in order. This converts front-end stalls
//! and cache misses into cycles without modeling a full scheduler.

use crate::config::SimConfig;
use crate::mem::MemoryHierarchy;
use acic_trace::{Instr, InstrKind};
use acic_types::Cycle;
use std::collections::VecDeque;

/// An instruction waiting in the decode queue.
#[derive(Clone, Copy, Debug)]
pub struct DecodedInstr {
    /// The instruction.
    pub instr: Instr,
    /// Global index assigned by the front end.
    pub index: u64,
}

#[derive(Clone, Copy, Debug)]
struct RobEntry {
    done: Cycle,
}

/// Decode queue + ROB + retirement.
pub struct Backend {
    /// Decode queue (Table II: 60 entries).
    pub dq: VecDeque<DecodedInstr>,
    dq_capacity: usize,
    rob: VecDeque<RobEntry>,
    rob_capacity: usize,
    dispatch_width: u32,
    retire_width: u32,
    long_alu_latency: u64,
    /// Retired instruction count.
    pub retired: u64,
    /// Resolved branches (global index, completion cycle) this cycle —
    /// drained by the simulator to unstall the front end.
    pub resolved_branches: Vec<(u64, Cycle)>,
}

impl Backend {
    /// Builds the backend from the simulation config.
    pub fn new(cfg: &SimConfig) -> Self {
        Backend {
            dq: VecDeque::with_capacity(cfg.decode_queue_entries),
            dq_capacity: cfg.decode_queue_entries,
            rob: VecDeque::with_capacity(cfg.rob_entries),
            rob_capacity: cfg.rob_entries,
            dispatch_width: cfg.decode_width,
            retire_width: cfg.retire_width,
            long_alu_latency: 4,
            retired: 0,
            resolved_branches: Vec::new(),
        }
    }

    /// Free slots in the decode queue.
    pub fn dq_space(&self) -> usize {
        self.dq_capacity - self.dq.len()
    }

    /// Whether every structure is empty (pipeline drained).
    pub fn drained(&self) -> bool {
        self.dq.is_empty() && self.rob.is_empty()
    }

    /// Completion cycle of the oldest ROB entry, or `None` when the
    /// ROB is empty. Retirement is in order, so no retire can happen
    /// before this cycle (an already-due head means the next cycle
    /// retires more — the width limit, not latency, is the stall).
    pub fn next_retire_at(&self) -> Option<Cycle> {
        self.rob.front().map(|e| e.done)
    }

    /// Whether the ROB has no free slot (dispatch is blocked until a
    /// retire frees one).
    pub fn rob_full(&self) -> bool {
        self.rob.len() >= self.rob_capacity
    }

    /// Retires completed instructions in order.
    pub fn retire(&mut self, now: Cycle) {
        let mut n = 0;
        while n < self.retire_width {
            match self.rob.front() {
                Some(e) if e.done <= now => {
                    self.rob.pop_front();
                    self.retired += 1;
                    n += 1;
                }
                _ => break,
            }
        }
    }

    /// Dispatches from the decode queue into the ROB, computing
    /// completion times. Branch completions are reported through
    /// [`Backend::resolved_branches`].
    pub fn dispatch(&mut self, now: Cycle, mem: &mut MemoryHierarchy) {
        let mut n = 0;
        while n < self.dispatch_width && self.rob.len() < self.rob_capacity {
            let Some(d) = self.dq.pop_front() else { break };
            let done = match d.instr.kind {
                InstrKind::Alu => now + 1,
                InstrKind::LongAlu => now + self.long_alu_latency,
                InstrKind::Load { addr } => mem.access_data(addr, d.instr.asid(), now, false),
                InstrKind::Store { addr } => mem.access_data(addr, d.instr.asid(), now, true),
                InstrKind::Branch { .. } => {
                    let done = now + 1;
                    self.resolved_branches.push((d.index, done));
                    done
                }
            };
            self.rob.push_back(RobEntry { done });
            n += 1;
        }
    }
}

impl core::fmt::Debug for Backend {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Backend")
            .field("dq", &self.dq.len())
            .field("rob", &self.rob.len())
            .field("retired", &self.retired)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_types::Addr;

    fn backend() -> (Backend, MemoryHierarchy) {
        let cfg = SimConfig::default();
        (Backend::new(&cfg), MemoryHierarchy::new(&cfg))
    }

    fn alu(i: u64) -> DecodedInstr {
        DecodedInstr {
            instr: Instr::alu(Addr::new(i * 4)),
            index: i,
        }
    }

    #[test]
    fn dispatch_and_retire_width_limits() {
        let (mut b, mut m) = backend();
        for i in 0..20 {
            b.dq.push_back(alu(i));
        }
        b.dispatch(0, &mut m);
        assert_eq!(b.dq.len(), 14, "6-wide dispatch");
        b.retire(1);
        assert_eq!(b.retired, 6, "6-wide retire");
    }

    #[test]
    fn in_order_retirement_blocks_on_slow_head() {
        let (mut b, mut m) = backend();
        // A cold load followed by fast ALUs: nothing retires until the
        // load completes.
        b.dq.push_back(DecodedInstr {
            instr: Instr::load(Addr::new(0), Addr::new(0x9999_0000)),
            index: 0,
        });
        for i in 1..4 {
            b.dq.push_back(alu(i));
        }
        b.dispatch(0, &mut m);
        b.retire(10);
        assert_eq!(b.retired, 0, "head load still outstanding");
        b.retire(10_000);
        assert_eq!(b.retired, 4);
    }

    #[test]
    fn branches_report_resolution() {
        let (mut b, mut m) = backend();
        b.dq.push_back(DecodedInstr {
            instr: Instr::branch(
                Addr::new(0),
                Addr::new(64),
                true,
                acic_trace::BranchClass::Direct,
            ),
            index: 42,
        });
        b.dispatch(5, &mut m);
        assert_eq!(b.resolved_branches, vec![(42, 6)]);
    }

    #[test]
    fn rob_capacity_limits_dispatch() {
        let cfg = SimConfig {
            rob_entries: 8,
            ..SimConfig::default()
        };
        let mut b = Backend::new(&cfg);
        let mut m = MemoryHierarchy::new(&cfg);
        for i in 0..20 {
            b.dq.push_back(alu(i));
        }
        b.dispatch(0, &mut m);
        b.dispatch(0, &mut m);
        assert_eq!(b.rob.len(), 8);
    }
}

//! Per-application generation profiles.
//!
//! Each profile shapes one synthetic application: how much hot
//! (dispatch/library), warm (per-request) and cold (error/init) code
//! exists, how requests fan out across the warm set, how loopy and
//! how branch-noisy the code is, and the data-side footprint. The ten
//! datacenter profiles mirror Table III's suite; the five SPEC
//! profiles mirror §IV-H3's SPEC2017 subset (small footprints, heavy
//! loops, high baseline hit rates).

/// Generation parameters for one synthetic application.
///
/// # Examples
///
/// ```
/// use acic_workloads::AppProfile;
///
/// let apps = AppProfile::datacenter_suite();
/// assert_eq!(apps.len(), 10);
/// assert_eq!(apps[0].name, "media-streaming");
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct AppProfile {
    /// Report name (paper's workload naming).
    pub name: String,
    /// Master seed; everything derives deterministically from it.
    pub seed: u64,
    /// Number of hot (dispatch/library) functions.
    pub hot_fns: usize,
    /// Number of warm (per-request) functions.
    pub warm_fns: usize,
    /// Number of cold (error/init path) functions.
    pub cold_fns: usize,
    /// Segments per hot function (inclusive range).
    pub hot_segments: (usize, usize),
    /// Segments per warm function (inclusive range).
    pub warm_segments: (usize, usize),
    /// Segments per cold function (inclusive range).
    pub cold_segments: (usize, usize),
    /// Body instructions per segment (inclusive range).
    pub segment_instrs: (u32, u32),
    /// Warm functions called per request (the length of each request
    /// type's function sequence).
    pub fanout: usize,
    /// Number of distinct request types (fixed warm-function
    /// sequences that recur).
    pub request_types: usize,
    /// Zipf exponent of request-type popularity: popular types recur
    /// at short gaps (their code deserves i-cache residency), rare
    /// types at long gaps (their code pollutes).
    pub type_skew: f64,
    /// Zipf exponent for warm-function popularity (higher = more
    /// skew; the popular head stays cache-worthy, the tail does not).
    pub warm_skew: f64,
    /// Probability that a warm segment ends in a call to a hot
    /// function.
    pub hot_call_prob: f64,
    /// Probability that a request takes a cold path.
    pub cold_visit_prob: f64,
    /// Probability that a function contains a loop.
    pub loop_fn_prob: f64,
    /// Back-edge taken probability of loops (expected iterations
    /// `p/(1-p)`, capped).
    pub loop_taken_prob: f64,
    /// Fraction of conditional skip branches that are near-50/50
    /// (data-dependent, hard for TAGE).
    pub branch_noise: f64,
    /// Fraction of body instructions that are loads.
    pub load_frac: f64,
    /// Fraction of body instructions that are stores.
    pub store_frac: f64,
    /// Fraction of body instructions that are long-latency ALU ops.
    pub long_alu_frac: f64,
    /// Heap footprint in 64 B blocks.
    pub heap_blocks: u64,
    /// Zipf exponent of heap accesses.
    pub heap_skew: f64,
}

impl AppProfile {
    fn base(name: &str, seed: u64) -> AppProfile {
        AppProfile {
            name: name.to_string(),
            seed,
            hot_fns: 12,
            warm_fns: 120,
            cold_fns: 400,
            hot_segments: (3, 6),
            warm_segments: (8, 14),
            cold_segments: (8, 20),
            segment_instrs: (4, 12),
            fanout: 7,
            request_types: 18,
            type_skew: 0.8,
            warm_skew: 0.8,
            hot_call_prob: 0.25,
            cold_visit_prob: 0.30,
            loop_fn_prob: 0.35,
            loop_taken_prob: 0.62,
            branch_noise: 0.10,
            load_frac: 0.22,
            store_frac: 0.08,
            long_alu_frac: 0.05,
            heap_blocks: 16 * 1024,
            heap_skew: 0.9,
        }
    }

    /// CloudSuite media streaming (Darwin streaming server).
    pub fn media_streaming() -> AppProfile {
        AppProfile {
            warm_fns: 120,
            fanout: 7,
            request_types: 18,
            type_skew: 0.8,
            warm_skew: 0.72,
            warm_segments: (9, 15),
            ..Self::base("media-streaming", 0xacc1_0001)
        }
    }

    /// CloudSuite data caching (memcached).
    pub fn data_caching() -> AppProfile {
        AppProfile {
            warm_fns: 120,
            fanout: 8,
            request_types: 18,
            type_skew: 0.7,
            warm_skew: 0.78,
            hot_call_prob: 0.3,
            cold_visit_prob: 0.35,
            heap_blocks: 48 * 1024,
            ..Self::base("data-caching", 0xacc1_0002)
        }
    }

    /// CloudSuite data serving (YCSB data store) — the suite's
    /// lowest-MPKI member.
    pub fn data_serving() -> AppProfile {
        AppProfile {
            warm_fns: 80,
            fanout: 6,
            request_types: 12,
            type_skew: 0.95,
            warm_skew: 0.95,
            warm_segments: (7, 12),
            loop_fn_prob: 0.45,
            cold_visit_prob: 0.15,
            cold_fns: 200,
            ..Self::base("data-serving", 0xacc1_0003)
        }
    }

    /// CloudSuite web serving.
    pub fn web_serving() -> AppProfile {
        AppProfile {
            warm_fns: 145,
            fanout: 9,
            request_types: 22,
            type_skew: 0.72,
            warm_skew: 0.85,
            branch_noise: 0.14,
            ..Self::base("web-serving", 0xacc1_0004)
        }
    }

    /// CloudSuite web search (Apache Solr) — the suite's highest-MPKI
    /// member.
    pub fn web_search() -> AppProfile {
        AppProfile {
            warm_fns: 175,
            fanout: 10,
            request_types: 26,
            type_skew: 0.68,
            warm_skew: 0.7,
            warm_segments: (10, 16),
            hot_call_prob: 0.2,
            branch_noise: 0.15,
            cold_visit_prob: 0.40,
            cold_fns: 520,
            ..Self::base("web-search", 0xacc1_0005)
        }
    }

    /// OLTPBench TPC-C — reuse distances well beyond the i-cache.
    pub fn tpc_c() -> AppProfile {
        AppProfile {
            warm_fns: 260,
            fanout: 8,
            request_types: 48,
            type_skew: 0.35,
            warm_skew: 0.4,
            cold_visit_prob: 0.40,
            cold_fns: 480,
            ..Self::base("tpc-c", 0xacc1_0006)
        }
    }

    /// OLTPBench Wikipedia.
    pub fn wikipedia() -> AppProfile {
        AppProfile {
            warm_fns: 240,
            fanout: 8,
            request_types: 44,
            type_skew: 0.35,
            warm_skew: 0.45,
            cold_visit_prob: 0.35,
            cold_fns: 440,
            ..Self::base("wikipedia", 0xacc1_0007)
        }
    }

    /// OLTPBench SIBench (snapshot isolation microbenchmark).
    pub fn sibench() -> AppProfile {
        AppProfile {
            warm_fns: 90,
            fanout: 6,
            request_types: 13,
            type_skew: 0.85,
            warm_skew: 0.6,
            warm_segments: (7, 12),
            cold_visit_prob: 0.20,
            cold_fns: 240,
            ..Self::base("sibench", 0xacc1_0008)
        }
    }

    /// Renaissance Finagle-HTTP (Twitter's HTTP server).
    pub fn finagle_http() -> AppProfile {
        AppProfile {
            warm_fns: 110,
            fanout: 7,
            request_types: 16,
            type_skew: 0.78,
            warm_skew: 0.88,
            hot_call_prob: 0.3,
            cold_visit_prob: 0.25,
            ..Self::base("finagle-http", 0xacc1_0009)
        }
    }

    /// Renaissance Neo4J analytics (graph queries).
    pub fn neo4j_analytics() -> AppProfile {
        AppProfile {
            warm_fns: 135,
            fanout: 8,
            request_types: 20,
            type_skew: 0.72,
            warm_skew: 0.75,
            warm_segments: (9, 15),
            cold_visit_prob: 0.35,
            heap_blocks: 64 * 1024,
            ..Self::base("neo4j-analytics", 0xacc1_000a)
        }
    }

    /// The paper's 10 datacenter applications (Table III order).
    pub fn datacenter_suite() -> Vec<AppProfile> {
        vec![
            Self::media_streaming(),
            Self::data_caching(),
            Self::data_serving(),
            Self::web_serving(),
            Self::web_search(),
            Self::tpc_c(),
            Self::wikipedia(),
            Self::sibench(),
            Self::finagle_http(),
            Self::neo4j_analytics(),
        ]
    }

    fn spec_base(name: &str, seed: u64) -> AppProfile {
        AppProfile {
            hot_fns: 8,
            warm_fns: 40,
            cold_fns: 100,
            fanout: 5,
            request_types: 14,
            type_skew: 0.9,
            cold_visit_prob: 0.08,
            warm_skew: 1.1,
            loop_fn_prob: 0.8,
            loop_taken_prob: 0.85,
            branch_noise: 0.06,

            heap_blocks: 8 * 1024,
            ..Self::base(name, seed)
        }
    }

    /// SPEC2017 perlbench-like profile.
    pub fn perlbench() -> AppProfile {
        AppProfile {
            warm_fns: 95,
            fanout: 6,
            request_types: 14,
            loop_taken_prob: 0.8,
            ..Self::spec_base("perlbench", 0x59ec_0001)
        }
    }

    /// SPEC2017 omnetpp-like profile.
    pub fn omnetpp() -> AppProfile {
        AppProfile {
            warm_fns: 80,
            fanout: 5,
            request_types: 12,
            ..Self::spec_base("omnetpp", 0x59ec_0002)
        }
    }

    /// SPEC2017 xalancbmk-like profile.
    pub fn xalancbmk() -> AppProfile {
        AppProfile {
            warm_fns: 100,
            fanout: 6,
            request_types: 14,
            warm_skew: 0.9,
            ..Self::spec_base("xalancbmk", 0x59ec_0003)
        }
    }

    /// SPEC2017 x264-like profile (tight loops, tiny footprint).
    pub fn x264() -> AppProfile {
        AppProfile {
            warm_fns: 40,
            fanout: 4,
            request_types: 8,
            loop_taken_prob: 0.92,
            ..Self::spec_base("x264", 0x59ec_0004)
        }
    }

    /// SPEC2017 gcc-like profile (largest of the SPEC subset).
    pub fn gcc() -> AppProfile {
        AppProfile {
            warm_fns: 120,
            fanout: 7,
            request_types: 18,
            warm_skew: 0.8,
            ..Self::spec_base("gcc", 0x59ec_0005)
        }
    }

    /// The paper's SPEC2017 subset with L1i MPKI > 1 (§IV-H3).
    pub fn spec_suite() -> Vec<AppProfile> {
        vec![
            Self::perlbench(),
            Self::omnetpp(),
            Self::xalancbmk(),
            Self::x264(),
            Self::gcc(),
        ]
    }

    /// Looks up a profile by its report name across both suites.
    pub fn by_name(name: &str) -> Option<AppProfile> {
        Self::datacenter_suite()
            .into_iter()
            .chain(Self::spec_suite())
            .find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_paper_counts() {
        assert_eq!(AppProfile::datacenter_suite().len(), 10);
        assert_eq!(AppProfile::spec_suite().len(), 5);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = AppProfile::datacenter_suite()
            .into_iter()
            .chain(AppProfile::spec_suite())
            .map(|p| p.name)
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn seeds_are_unique() {
        let mut seeds: Vec<u64> = AppProfile::datacenter_suite()
            .into_iter()
            .chain(AppProfile::spec_suite())
            .map(|p| p.seed)
            .collect();
        let before = seeds.len();
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), before);
    }

    #[test]
    fn lookup_by_name() {
        assert!(AppProfile::by_name("web-search").is_some());
        assert!(AppProfile::by_name("gcc").is_some());
        assert!(AppProfile::by_name("no-such-app").is_none());
    }

    #[test]
    fn spec_footprints_are_smaller() {
        let spec_warm: usize = AppProfile::spec_suite().iter().map(|p| p.warm_fns).sum();
        let dc_warm: usize = AppProfile::datacenter_suite()
            .iter()
            .map(|p| p.warm_fns)
            .sum();
        assert!(spec_warm * 3 < dc_warm);
    }
}

//! The static program model: functions, segments, terminators.
//!
//! A program is generated once per profile (seeded) and then walked
//! deterministically. Functions are laid out contiguously in a code
//! region starting at 64 B block boundaries; a function is a list of
//! *segments* (straight-line instruction runs) whose terminators
//! encode control flow: loop back-edges, forward skips, calls into
//! the hot/cold layers, and the final return.

use crate::profile::AppProfile;
use acic_types::{Addr, BLOCK_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bytes per instruction (fixed-width ISA).
pub const INSTR_BYTES: u64 = 4;
/// Base of the code region.
pub const CODE_BASE: u64 = 0x0040_0000;
/// Base of the stack data region.
pub const STACK_BASE: u64 = 0x7fff_0000_0000;
/// Base of the heap data region.
pub const HEAP_BASE: u64 = 0x5555_0000_0000;

/// Software layer a function belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Dispatch / hot library code, touched every request.
    Hot,
    /// Per-request application code.
    Warm,
    /// Rare paths (errors, logging, initialization).
    Cold,
}

/// How a segment ends.
#[derive(Clone, Debug, PartialEq)]
pub enum Terminator {
    /// Straight-line continuation into the next segment (no branch).
    FallThrough,
    /// Conditional back-edge to an earlier segment.
    LoopBack {
        /// Target segment index within the same function.
        to: usize,
        /// Back-edge taken probability.
        taken_prob: f64,
        /// Hard iteration cap per loop entry.
        max_iters: u32,
    },
    /// Conditional forward skip.
    Skip {
        /// Number of following segments skipped when taken.
        over: usize,
        /// Taken probability.
        taken_prob: f64,
    },
    /// Call; `callees` are function ids (1 = direct call, more =
    /// indirect dispatch; empty = dynamic warm dispatch resolved by
    /// the walker).
    Call {
        /// Candidate callees (empty for walker-resolved warm calls).
        callees: Vec<usize>,
        /// Whether this site targets the cold layer.
        cold: bool,
    },
    /// Function return.
    Ret,
}

impl Terminator {
    /// Whether this terminator occupies an instruction slot (emits a
    /// branch).
    pub fn emits_branch(&self) -> bool {
        !matches!(self, Terminator::FallThrough)
    }
}

/// A straight-line run of instructions plus its terminator.
#[derive(Clone, Debug, PartialEq)]
pub struct Segment {
    /// Address of the first body instruction.
    pub start: Addr,
    /// Number of body instructions (terminator branch excluded).
    pub body_instrs: u32,
    /// Segment terminator.
    pub term: Terminator,
}

impl Segment {
    /// Total instructions including the terminator branch, if any.
    pub fn total_instrs(&self) -> u32 {
        self.body_instrs + self.term.emits_branch() as u32
    }

    /// Address of the terminator branch instruction.
    ///
    /// # Panics
    ///
    /// Panics if the terminator does not emit a branch.
    pub fn branch_pc(&self) -> Addr {
        assert!(self.term.emits_branch(), "fall-through has no branch");
        self.start + self.body_instrs as u64 * INSTR_BYTES
    }

    /// Address just past the segment.
    pub fn end(&self) -> Addr {
        self.start + self.total_instrs() as u64 * INSTR_BYTES
    }
}

/// A generated function.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Index into [`Program::functions`].
    pub id: usize,
    /// Software layer.
    pub layer: Layer,
    /// Entry address (64 B aligned).
    pub base: Addr,
    /// Segments in layout order.
    pub segments: Vec<Segment>,
}

impl Function {
    /// Code size in bytes.
    pub fn code_bytes(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| s.total_instrs() as u64 * INSTR_BYTES)
            .sum()
    }
}

/// A complete generated program.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// All functions; ids index this vector.
    pub functions: Vec<Function>,
    /// Ids of hot functions (dispatcher excluded).
    pub hot: Vec<usize>,
    /// Ids of warm functions.
    pub warm: Vec<usize>,
    /// Ids of cold functions.
    pub cold: Vec<usize>,
    /// Id of the request dispatcher function.
    pub dispatcher: usize,
    /// Cumulative zipf weights over `warm` (used while composing
    /// request types).
    pub warm_cdf: Vec<f64>,
    /// Request types: each is the fixed sequence of warm functions a
    /// request of that type executes. Requests of the same type recur,
    /// which is what makes a block's post-burst fate *consistent* —
    /// the signal ACIC's predictor learns (§II's burstiness).
    pub types: Vec<Vec<usize>>,
    /// Cumulative zipf weights over `types`.
    pub type_cdf: Vec<f64>,
    code_hi: Addr,
}

impl Program {
    /// Generates the program for a profile (deterministic per seed).
    pub fn generate(profile: &AppProfile) -> Program {
        let mut rng = StdRng::seed_from_u64(profile.seed);
        let mut functions = Vec::new();
        let mut cursor = CODE_BASE;

        // Hot layer first (dense, close together, like a hot library).
        let mut hot = Vec::new();
        for _ in 0..profile.hot_fns {
            let id = functions.len();
            functions.push(gen_function(
                id,
                Layer::Hot,
                &mut cursor,
                profile.hot_segments,
                profile,
                &mut rng,
                &[],
            ));
            hot.push(id);
        }

        // Warm layer: call sites target the hot layer.
        let mut warm = Vec::new();
        for _ in 0..profile.warm_fns {
            let id = functions.len();
            functions.push(gen_function(
                id,
                Layer::Warm,
                &mut cursor,
                profile.warm_segments,
                profile,
                &mut rng,
                &hot,
            ));
            warm.push(id);
        }

        // Cold layer: straight-line rarely-visited code.
        let mut cold = Vec::new();
        for _ in 0..profile.cold_fns {
            let id = functions.len();
            functions.push(gen_function(
                id,
                Layer::Cold,
                &mut cursor,
                profile.cold_segments,
                profile,
                &mut rng,
                &[],
            ));
            cold.push(id);
        }

        // Dispatcher: one call site per fanout slot (walker resolves
        // warm targets dynamically — indirect dispatch), plus a cold
        // site guarded by a skip branch.
        let dispatcher = functions.len();
        let mut segments = Vec::new();
        let mut fn_cursor = align_block(cursor);
        let entry = fn_cursor;
        for _ in 0..profile.fanout {
            push_segment(
                &mut segments,
                &mut fn_cursor,
                rng.gen_range(2..=4),
                Terminator::Call {
                    callees: Vec::new(),
                    cold: false,
                },
            );
        }
        // Guarded cold path: skip over the cold call most of the time.
        push_segment(
            &mut segments,
            &mut fn_cursor,
            1,
            Terminator::Skip {
                over: 1,
                taken_prob: 1.0 - profile.cold_visit_prob,
            },
        );
        push_segment(
            &mut segments,
            &mut fn_cursor,
            1,
            Terminator::Call {
                callees: cold.clone(),
                cold: true,
            },
        );
        push_segment(&mut segments, &mut fn_cursor, 2, Terminator::Ret);
        functions.push(Function {
            id: dispatcher,
            layer: Layer::Hot,
            base: Addr::new(entry),
            segments,
        });
        cursor = fn_cursor;

        // Warm-popularity CDF (zipf over rank).
        let warm_cdf = zipf_cdf(warm.len(), profile.warm_skew);

        // Request types: fixed warm-function sequences. Popular warm
        // functions appear in many types (shared library-ish code);
        // tail functions belong to rare types only.
        let mut types = Vec::with_capacity(profile.request_types);
        for _ in 0..profile.request_types {
            let mut seq = Vec::with_capacity(profile.fanout);
            while seq.len() < profile.fanout {
                let u: f64 = rng.gen_range(0.0..1.0);
                let idx = warm_cdf.partition_point(|&c| c < u).min(warm.len() - 1);
                let f = warm[idx];
                if seq.last() != Some(&f) {
                    seq.push(f);
                }
            }
            types.push(seq);
        }
        let type_cdf = zipf_cdf(types.len(), profile.type_skew);

        Program {
            functions,
            hot,
            warm,
            cold,
            dispatcher,
            warm_cdf,
            types,
            type_cdf,
            code_hi: Addr::new(cursor),
        }
    }

    /// The `[low, high)` address range containing all code.
    pub fn code_range(&self) -> (Addr, Addr) {
        (Addr::new(CODE_BASE), self.code_hi)
    }

    /// Total code footprint in 64 B blocks.
    pub fn code_blocks(&self) -> u64 {
        let (lo, hi) = self.code_range();
        (hi.raw() - lo.raw()).div_ceil(BLOCK_BYTES)
    }

    /// Samples a warm function id from the popularity distribution
    /// given a uniform draw in `[0, 1)`.
    pub fn sample_warm(&self, u: f64) -> usize {
        let idx = self
            .warm_cdf
            .partition_point(|&c| c < u)
            .min(self.warm.len() - 1);
        self.warm[idx]
    }

    /// Samples a request-type index from the type popularity
    /// distribution given a uniform draw in `[0, 1)`.
    pub fn sample_type(&self, u: f64) -> usize {
        self.type_cdf
            .partition_point(|&c| c < u)
            .min(self.types.len() - 1)
    }
}

/// Normalized cumulative zipf weights for `n` ranks with exponent `s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut acc = 0.0;
    for rank in 0..n {
        acc += 1.0 / ((rank + 1) as f64).powf(s);
        cdf.push(acc);
    }
    for w in cdf.iter_mut() {
        *w /= acc;
    }
    cdf
}

fn align_block(addr: u64) -> u64 {
    addr.next_multiple_of(BLOCK_BYTES)
}

fn push_segment(segments: &mut Vec<Segment>, cursor: &mut u64, body_instrs: u32, term: Terminator) {
    let seg = Segment {
        start: Addr::new(*cursor),
        body_instrs,
        term,
    };
    *cursor = seg.end().raw();
    segments.push(seg);
}

fn gen_function(
    id: usize,
    layer: Layer,
    cursor: &mut u64,
    seg_range: (usize, usize),
    profile: &AppProfile,
    rng: &mut StdRng,
    hot_targets: &[usize],
) -> Function {
    let n_segments = rng.gen_range(seg_range.0..=seg_range.1);
    let has_loop = rng.gen_bool(profile.loop_fn_prob);
    let loop_at = if has_loop && n_segments > 2 {
        Some(rng.gen_range(1..n_segments - 1))
    } else {
        None
    };

    // Phase 1: plan bodies and structural terminators (calls, loops,
    // return).
    let mut bodies = Vec::with_capacity(n_segments);
    let mut terms: Vec<Terminator> = Vec::with_capacity(n_segments);
    for s in 0..n_segments {
        bodies.push(rng.gen_range(profile.segment_instrs.0..=profile.segment_instrs.1));
        let term = if s == n_segments - 1 {
            Terminator::Ret
        } else if Some(s) == loop_at {
            let span = rng.gen_range(1..=s.clamp(1, 3));
            // Nominal trip count derived from the profile's loop
            // intensity: expected iterations of a geometric loop with
            // back-edge probability p is p/(1-p); real loops mostly
            // repeat that count exactly, which is what makes their
            // exits predictable.
            let expected = (profile.loop_taken_prob / (1.0 - profile.loop_taken_prob)).round();
            let nominal = (expected as u32).clamp(2, 24) + rng.gen_range(0..3u32);
            Terminator::LoopBack {
                to: s.saturating_sub(span),
                taken_prob: profile.loop_taken_prob,
                max_iters: nominal,
            }
        } else if layer == Layer::Warm
            && !hot_targets.is_empty()
            && rng.gen_bool(profile.hot_call_prob)
        {
            // Hot-library call sites are monomorphic (one fixed
            // callee), as most real call sites are; the polymorphic
            // dispatch lives in the dispatcher's request-type calls.
            Terminator::Call {
                callees: vec![hot_targets[rng.gen_range(0..hot_targets.len())]],
                cold: false,
            }
        } else {
            Terminator::FallThrough
        };
        terms.push(term);
    }

    // Phase 2: convert some fall-throughs into forward skips — but
    // never over a call site, which would make the call-path
    // signature of a request type unstable.
    for s in 0..n_segments.saturating_sub(2) {
        if !matches!(terms[s], Terminator::FallThrough) || !rng.gen_bool(0.3) {
            continue;
        }
        let max_over = (n_segments - s - 2).min(2);
        let mut over = rng.gen_range(1..=max_over);
        while over > 0
            && terms[s + 1..=s + over]
                .iter()
                .any(|t| matches!(t, Terminator::Call { .. }))
        {
            over -= 1;
        }
        if over == 0 {
            continue;
        }
        let noisy = rng.gen_bool(profile.branch_noise);
        let taken_prob = if noisy {
            rng.gen_range(0.4..0.6)
        } else if rng.gen_bool(0.5) {
            rng.gen_range(0.02..0.12)
        } else {
            rng.gen_range(0.88..0.98)
        };
        terms[s] = Terminator::Skip { over, taken_prob };
    }

    // Phase 3: lay the segments out in memory.
    let mut fn_cursor = align_block(*cursor);
    let entry = fn_cursor;
    let mut segments = Vec::with_capacity(n_segments);
    for (body, term) in bodies.into_iter().zip(terms) {
        push_segment(&mut segments, &mut fn_cursor, body, term);
    }
    *cursor = fn_cursor;
    Function {
        id,
        layer,
        base: Addr::new(entry),
        segments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::AppProfile;

    #[test]
    fn generation_is_deterministic() {
        let p = AppProfile::media_streaming();
        assert_eq!(Program::generate(&p), Program::generate(&p));
    }

    #[test]
    fn functions_do_not_overlap() {
        let prog = Program::generate(&AppProfile::web_search());
        let mut prev_end = 0;
        for f in &prog.functions {
            assert!(f.base.raw() >= prev_end, "function {} overlaps", f.id);
            prev_end = f.base.raw() + f.code_bytes();
        }
    }

    #[test]
    fn segments_are_contiguous_within_function() {
        let prog = Program::generate(&AppProfile::tpc_c());
        for f in &prog.functions {
            let mut cursor = f.base;
            for s in &f.segments {
                assert_eq!(s.start, cursor);
                cursor = s.end();
            }
        }
    }

    #[test]
    fn every_function_ends_with_ret() {
        let prog = Program::generate(&AppProfile::data_caching());
        for f in &prog.functions {
            assert_eq!(
                f.segments.last().map(|s| &s.term),
                Some(&Terminator::Ret),
                "function {} lacks a return",
                f.id
            );
        }
    }

    #[test]
    fn loop_targets_are_backward() {
        let prog = Program::generate(&AppProfile::x264());
        for f in &prog.functions {
            for (i, s) in f.segments.iter().enumerate() {
                if let Terminator::LoopBack { to, .. } = s.term {
                    assert!(to <= i, "forward loop edge in fn {}", f.id);
                }
            }
        }
    }

    #[test]
    fn skips_stay_in_bounds() {
        let prog = Program::generate(&AppProfile::wikipedia());
        for f in &prog.functions {
            for (i, s) in f.segments.iter().enumerate() {
                if let Terminator::Skip { over, .. } = s.term {
                    assert!(i + 1 + over < f.segments.len(), "skip escapes fn {}", f.id);
                }
            }
        }
    }

    #[test]
    fn warm_cdf_is_monotone_and_normalized() {
        let prog = Program::generate(&AppProfile::neo4j_analytics());
        let cdf = &prog.warm_cdf;
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sample_warm_covers_head_and_tail() {
        let prog = Program::generate(&AppProfile::media_streaming());
        let head = prog.sample_warm(0.0);
        let tail = prog.sample_warm(0.999999);
        assert_ne!(head, tail);
        assert!(prog.warm.contains(&head) && prog.warm.contains(&tail));
    }

    #[test]
    fn code_footprint_exceeds_icache_for_datacenter() {
        // 32 KB i-cache = 512 blocks; datacenter code must be larger.
        for p in AppProfile::datacenter_suite() {
            let prog = Program::generate(&p);
            assert!(
                prog.code_blocks() > 512,
                "{} footprint {} blocks",
                p.name,
                prog.code_blocks()
            );
        }
    }
}

//! Synthetic workloads standing in for the paper's full-system traces.
//!
//! The paper records QEMU traces of 10 datacenter applications
//! (CloudSuite, OLTPBench, Renaissance — Table III) and 5 SPEC2017
//! integer benchmarks. Those traces are not redistributable, so this
//! crate builds the closest synthetic equivalent: each application is
//! a seeded, randomly generated *program* — a layered call graph of
//! hot (library/dispatch), warm (per-request) and cold (error/init)
//! functions whose bodies are sequences of basic-block segments with
//! loops, biased branches, calls and returns. A deterministic walker
//! executes request after request, yielding the instruction stream.
//!
//! What the substitution preserves (see DESIGN.md):
//!
//! * **Burstiness** — linear walks and loops give ~85% distance-0
//!   block reuse plus a short-term temporal bucket (Figure 1a's left
//!   side).
//! * **The post-burst gap** — a warm function's blocks return only
//!   when a later request re-selects it, placing reuse distances in
//!   the hundreds-to-thousands of blocks; per-profile working-set
//!   sizes put that mass just beyond the 512-block i-cache for the
//!   apps the paper calls out (web search, Neo4J, data caching, media
//!   streaming) and far beyond it for TPC-C/Wikipedia.
//! * **Learnable structure** — functions have stable per-block
//!   behavior across requests, which is exactly the signal ACIC's
//!   two-level predictor keys on.
//!
//! # Examples
//!
//! ```
//! use acic_trace::TraceSource;
//! use acic_workloads::{AppProfile, SyntheticWorkload};
//!
//! let wl = SyntheticWorkload::with_instructions(AppProfile::media_streaming(), 10_000);
//! assert_eq!(wl.iter().count(), 10_000);
//! // Deterministic: a second pass yields the identical stream.
//! let a: Vec<_> = wl.iter().take(100).collect();
//! let b: Vec<_> = wl.iter().take(100).collect();
//! assert_eq!(a, b);
//! ```

pub mod multi_tenant;
pub mod profile;
pub mod program;
pub mod spec;
pub mod walker;

pub use multi_tenant::MultiTenantWorkload;
pub use profile::AppProfile;
pub use program::{Program, Terminator};
pub use spec::{ladder_budgets, split_budget, GeneratedWorkload, WorkloadSpec};
pub use walker::Walker;

use acic_trace::TraceSource;

/// Short names used as figure columns.
pub fn short_name(app: &str) -> String {
    app.replace("-analytics", "").replace("-http", "")
}

/// A generated program plus a fixed instruction budget, usable as a
/// [`TraceSource`].
#[derive(Debug)]
pub struct SyntheticWorkload {
    profile: AppProfile,
    program: Program,
    instructions: u64,
}

impl SyntheticWorkload {
    /// Generates the program for `profile` with its default
    /// instruction budget (4 M; override with
    /// [`SyntheticWorkload::with_instructions`]).
    pub fn new(profile: AppProfile) -> Self {
        Self::with_instructions(profile, 4_000_000)
    }

    /// Generates the program with an explicit instruction budget.
    pub fn with_instructions(profile: AppProfile, instructions: u64) -> Self {
        let program = Program::generate(&profile);
        SyntheticWorkload {
            profile,
            program,
            instructions,
        }
    }

    /// The application profile.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// The generated program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The instruction budget per pass.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }
}

impl TraceSource for SyntheticWorkload {
    type Iter<'a> = core::iter::Take<Walker<'a>>;

    fn iter(&self) -> Self::Iter<'_> {
        Walker::new(&self.program, &self.profile).take(self.instructions as usize)
    }

    fn name(&self) -> &str {
        &self.profile.name
    }

    fn len_hint(&self) -> Option<u64> {
        // The walker is infinite and truncated by `take`, so the
        // budget is exact — no counting pass needed.
        Some(self.instructions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_trace::TraceSource;

    #[test]
    fn all_datacenter_profiles_generate_and_run() {
        for profile in AppProfile::datacenter_suite() {
            let wl = SyntheticWorkload::with_instructions(profile, 2_000);
            assert_eq!(wl.iter().count(), 2_000, "{}", wl.name());
        }
    }

    #[test]
    fn all_spec_profiles_generate_and_run() {
        for profile in AppProfile::spec_suite() {
            let wl = SyntheticWorkload::with_instructions(profile, 2_000);
            assert_eq!(wl.iter().count(), 2_000, "{}", wl.name());
        }
    }

    #[test]
    fn pcs_stay_inside_the_code_footprint() {
        let wl = SyntheticWorkload::with_instructions(AppProfile::web_search(), 20_000);
        let (lo, hi) = wl.program().code_range();
        for i in wl.iter() {
            let pc = i.pc();
            assert!(pc >= lo && pc < hi, "pc {pc} outside [{lo}, {hi})");
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let a = SyntheticWorkload::with_instructions(AppProfile::tpc_c(), 5_000);
        let b = SyntheticWorkload::with_instructions(AppProfile::tpc_c(), 5_000);
        assert!(a.iter().eq(b.iter()));
    }
}

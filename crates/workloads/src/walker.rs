//! The deterministic program walker: executes requests against a
//! generated [`Program`], yielding the dynamic instruction stream.

use crate::profile::AppProfile;
use crate::program::{Program, Terminator, HEAP_BASE, STACK_BASE};
use acic_trace::{BranchClass, Instr};
use acic_types::Addr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// One activation record on the walker's call stack.
#[derive(Debug)]
struct Frame {
    fn_id: usize,
    seg: usize,
    /// Per-segment consecutive loop-iteration counters.
    loop_iters: Vec<u32>,
    /// Per-segment trip count chosen at loop entry (0 = not chosen).
    loop_trip: Vec<u32>,
    return_pc: Addr,
}

/// Iterator over the dynamic instruction stream of a program.
///
/// The walker repeatedly executes *requests*: each request walks the
/// dispatcher, whose call sites fan out into zipf-selected warm
/// functions, which in turn call hot library functions and (rarely)
/// cold paths. All randomness comes from a seeded PRNG, so the stream
/// is identical on every pass — the property the two-pass Belady
/// oracle relies on.
#[derive(Debug)]
pub struct Walker<'a> {
    program: &'a Program,
    profile: &'a AppProfile,
    rng: StdRng,
    buf: VecDeque<Instr>,
    stack: Vec<Frame>,
    /// Request type currently being served.
    current_type: usize,
    /// Next position within the type's warm-function sequence.
    warm_site: usize,
}

impl<'a> Walker<'a> {
    /// Starts a fresh walk (always from the same initial state).
    pub fn new(program: &'a Program, profile: &'a AppProfile) -> Self {
        Walker {
            program,
            profile,
            rng: StdRng::seed_from_u64(profile.seed ^ 0x57a1_c3d4_e5f6_0718),
            buf: VecDeque::with_capacity(32),
            stack: Vec::with_capacity(4),
            current_type: 0,
            warm_site: 0,
        }
    }

    fn push_frame(&mut self, fn_id: usize, return_pc: Addr) {
        let segs = self.program.functions[fn_id].segments.len();
        self.stack.push(Frame {
            fn_id,
            seg: 0,
            loop_iters: vec![0; segs],
            loop_trip: vec![0; segs],
            return_pc,
        });
    }

    fn data_addr(&mut self, fn_id: usize) -> Addr {
        if self.rng.gen_bool(0.6) {
            // Stack frame: 4 blocks private to the function.
            let frame_base = STACK_BASE + fn_id as u64 * 256;
            Addr::new(frame_base + self.rng.gen_range(0..32u64) * 8)
        } else {
            // Heap: zipf-ish power-law over the footprint.
            let u: f64 = self.rng.gen_range(0.0..1.0f64);
            let s = self.profile.heap_skew.min(0.99);
            let block = (self.profile.heap_blocks as f64 * u.powf(1.0 / (1.0 - s))) as u64;
            let block = block.min(self.profile.heap_blocks - 1);
            Addr::new(HEAP_BASE + block * 64 + self.rng.gen_range(0..8u64) * 8)
        }
    }

    fn emit_body(&mut self, fn_id: usize, start: Addr, count: u32) {
        for k in 0..count {
            let pc = start + k as u64 * 4;
            let draw: f64 = self.rng.gen_range(0.0..1.0);
            let p = self.profile;
            let instr = if draw < p.load_frac {
                let addr = self.data_addr(fn_id);
                Instr::load(pc, addr)
            } else if draw < p.load_frac + p.store_frac {
                let addr = self.data_addr(fn_id);
                Instr::store(pc, addr)
            } else if draw < p.load_frac + p.store_frac + p.long_alu_frac {
                Instr::long_alu(pc)
            } else {
                Instr::alu(pc)
            };
            self.buf.push_back(instr);
        }
    }

    /// Executes one segment of the top frame, refilling the buffer.
    fn step(&mut self) {
        if self.stack.is_empty() {
            // New request: pick a request type and enter the
            // dispatcher. Its return jumps back to its own entry,
            // modeling the server event loop.
            let u: f64 = self.rng.gen_range(0.0..1.0);
            self.current_type = self.program.sample_type(u);
            self.warm_site = 0;
            let entry = self.program.functions[self.program.dispatcher].base;
            self.push_frame(self.program.dispatcher, entry);
        }
        let frame = self.stack.last().expect("frame pushed above");
        let (fn_id, seg_idx) = (frame.fn_id, frame.seg);
        let func = &self.program.functions[fn_id];
        let seg = &func.segments[seg_idx];
        let (start, body, term) = (seg.start, seg.body_instrs, seg.term.clone());
        self.emit_body(fn_id, start, body);
        let branch_pc = start + body as u64 * 4;

        match term {
            Terminator::FallThrough => {
                self.stack.last_mut().expect("frame").seg += 1;
            }
            Terminator::LoopBack {
                to,
                taken_prob: _,
                max_iters,
            } => {
                // Real loops mostly run their nominal trip count;
                // occasionally (10%) a data-dependent entry deviates.
                let deviate = self.rng.gen_bool(0.1);
                let target = func.segments[to].start;
                let frame = self.stack.last_mut().expect("frame");
                if frame.loop_trip[seg_idx] == 0 {
                    let mut trip = max_iters;
                    if deviate {
                        trip = (trip + 1).min(24);
                    }
                    frame.loop_trip[seg_idx] = trip;
                }
                let iters = &mut frame.loop_iters[seg_idx];
                let taken = *iters + 1 < frame.loop_trip[seg_idx];
                self.buf.push_back(Instr::branch(
                    branch_pc,
                    target,
                    taken,
                    BranchClass::Conditional,
                ));
                if taken {
                    frame.loop_iters[seg_idx] += 1;
                    frame.seg = to;
                } else {
                    frame.loop_iters[seg_idx] = 0;
                    frame.loop_trip[seg_idx] = 0;
                    frame.seg = seg_idx + 1;
                }
            }
            Terminator::Skip { over, taken_prob } => {
                let target_idx = seg_idx + 1 + over;
                let target = func.segments[target_idx].start;
                let taken = self.rng.gen_bool(taken_prob);
                self.buf.push_back(Instr::branch(
                    branch_pc,
                    target,
                    taken,
                    BranchClass::Conditional,
                ));
                let frame = self.stack.last_mut().expect("frame");
                frame.seg = if taken { target_idx } else { seg_idx + 1 };
            }
            Terminator::Call { callees, cold } => {
                let (callee, class) = if callees.is_empty() {
                    // Dynamic warm dispatch (virtual call): the
                    // request type dictates the callee sequence.
                    let seq = &self.program.types[self.current_type];
                    let callee = seq[self.warm_site % seq.len()];
                    self.warm_site += 1;
                    (callee, BranchClass::Indirect)
                } else if callees.len() == 1 {
                    (callees[0], BranchClass::Call)
                } else if cold {
                    // Cold paths scatter (error codes differ).
                    let i = self.rng.gen_range(0..callees.len());
                    (callees[i], BranchClass::Indirect)
                } else {
                    // Virtual dispatch is stable per request type.
                    let h = acic_types::hash::mix2(branch_pc.raw(), self.current_type as u64);
                    (
                        callees[(h % callees.len() as u64) as usize],
                        BranchClass::Indirect,
                    )
                };
                let target = self.program.functions[callee].base;
                self.buf
                    .push_back(Instr::branch(branch_pc, target, true, class));
                let return_pc = branch_pc + 4;
                self.stack.last_mut().expect("frame").seg = seg_idx + 1;
                self.push_frame(callee, return_pc);
            }
            Terminator::Ret => {
                let frame = self.stack.pop().expect("frame");
                self.buf.push_back(Instr::branch(
                    branch_pc,
                    frame.return_pc,
                    true,
                    BranchClass::Return,
                ));
            }
        }
    }
}

impl Iterator for Walker<'_> {
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        while self.buf.is_empty() {
            self.step();
        }
        self.buf.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::AppProfile;

    fn take(profile: &AppProfile, n: usize) -> Vec<Instr> {
        let program = Program::generate(profile);
        Walker::new(&program, profile).take(n).collect::<Vec<_>>()
    }

    #[test]
    fn stream_is_infinite_and_deterministic() {
        let p = AppProfile::sibench();
        let a = take(&p, 50_000);
        let b = take(&p, 50_000);
        assert_eq!(a, b);
    }

    #[test]
    fn call_stack_depth_is_bounded() {
        let p = AppProfile::web_serving();
        let program = Program::generate(&p);
        let mut w = Walker::new(&program, &p);
        for _ in 0..100_000 {
            w.next();
            assert!(w.stack.len() <= 3, "stack depth {}", w.stack.len());
        }
    }

    #[test]
    fn branch_fraction_is_realistic() {
        let p = AppProfile::media_streaming();
        let instrs = take(&p, 100_000);
        let branches = instrs.iter().filter(|i| i.is_branch()).count();
        let frac = branches as f64 / instrs.len() as f64;
        assert!(
            (0.05..0.35).contains(&frac),
            "branch fraction {frac} out of range"
        );
    }

    #[test]
    fn memory_fraction_tracks_profile() {
        let p = AppProfile::data_caching();
        let instrs = take(&p, 100_000);
        let mems = instrs.iter().filter(|i| i.is_mem()).count();
        let frac = mems as f64 / instrs.len() as f64;
        let expected = p.load_frac + p.store_frac;
        assert!(
            (frac - expected).abs() < 0.08,
            "mem fraction {frac} vs profile {expected}"
        );
    }

    #[test]
    fn taken_branches_target_segment_starts() {
        let p = AppProfile::finagle_http();
        let program = Program::generate(&p);
        let starts: std::collections::HashSet<u64> = program
            .functions
            .iter()
            .flat_map(|f| f.segments.iter().map(|s| s.start.raw()))
            .collect();
        for i in take(&p, 50_000) {
            if i.is_taken_branch() {
                let t = i.branch_target().unwrap().raw();
                assert!(starts.contains(&t), "target {t:#x} is not a segment start");
            }
        }
    }

    #[test]
    fn hot_code_dominates_execution() {
        // Hot + dispatcher instructions should be a large share even
        // though hot code is a tiny part of the footprint.
        let p = AppProfile::tpc_c();
        let program = Program::generate(&p);
        let hot_hi = program.functions[program.warm[0]].base.raw();
        let instrs = take(&p, 100_000);
        let hot_count = instrs.iter().filter(|i| i.pc().raw() < hot_hi).count();
        let frac = hot_count as f64 / instrs.len() as f64;
        assert!(frac > 0.10, "hot fraction {frac}");
    }
}

//! Multi-tenant workload composition: heterogeneous application
//! profiles interleaved under one master seed.
//!
//! A datacenter core time-slices many services; modeling that takes
//! more than one synthetic program. [`MultiTenantWorkload`] builds N
//! [`SyntheticWorkload`] tenants — each from its own [`AppProfile`],
//! each reseeded from a single master seed so two tenants running the
//! *same* profile still get distinct programs — and interleaves them
//! with [`InterleavedTrace`] under a fixed context-switch quantum.
//! All tenants emit PCs in the same virtual-address range (every
//! process links its hot code low), which is exactly the aliasing an
//! ASID-tagged i-cache exists to disambiguate.

use crate::profile::AppProfile;
use crate::SyntheticWorkload;
use acic_trace::InterleavedTrace;
use acic_types::hash::mix2;

/// Builder for an interleaved multi-tenant workload.
///
/// # Examples
///
/// ```
/// use acic_trace::TraceSource;
/// use acic_workloads::{AppProfile, MultiTenantWorkload};
///
/// let mt = MultiTenantWorkload::new(5_000)
///     .tenant(AppProfile::web_search(), 20_000)
///     .tenant(AppProfile::tpc_c(), 20_000)
///     .build();
/// assert_eq!(mt.len_hint(), Some(40_000));
/// assert_eq!(mt.tenant_count(), 2);
/// ```
#[derive(Debug)]
pub struct MultiTenantWorkload {
    quantum: u64,
    seed: u64,
    tenants: Vec<(AppProfile, u64)>,
}

impl MultiTenantWorkload {
    /// Starts a builder with `quantum` instructions per timeslice and
    /// the default master seed.
    pub fn new(quantum: u64) -> Self {
        MultiTenantWorkload {
            quantum,
            seed: 0x5eed_ac1c,
            tenants: Vec::new(),
        }
    }

    /// Overrides the master seed (every tenant's program derives from
    /// it deterministically).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a tenant running `profile` for `instructions`
    /// instructions in total (spread across its timeslices).
    pub fn tenant(mut self, profile: AppProfile, instructions: u64) -> Self {
        self.tenants.push((profile, instructions));
        self
    }

    /// Adds the first `count` datacenter-suite profiles as tenants,
    /// `instructions` each — the standard heterogeneous mix of the
    /// multi-tenant scenario figure.
    pub fn suite_tenants(mut self, count: usize, instructions: u64) -> Self {
        for profile in AppProfile::datacenter_suite().into_iter().take(count) {
            self.tenants.push((profile, instructions));
        }
        self
    }

    /// Generates every tenant program and composes the interleaved
    /// trace. Tenant `i`'s profile seed is perturbed by
    /// `mix2(master, i)`, so duplicate profiles become distinct
    /// programs while the whole workload stays a pure function of the
    /// builder inputs.
    ///
    /// # Panics
    ///
    /// Panics if no tenants were added or the quantum is zero
    /// (delegated to [`InterleavedTrace`]).
    pub fn build(self) -> InterleavedTrace<SyntheticWorkload> {
        let children: Vec<SyntheticWorkload> = self
            .tenants
            .into_iter()
            .enumerate()
            .map(|(i, (mut profile, instructions))| {
                profile.seed = mix2(profile.seed, mix2(self.seed, i as u64));
                profile.name = format!("{}#{}", profile.name, i);
                SyntheticWorkload::with_instructions(profile, instructions)
            })
            .collect();
        InterleavedTrace::new(children, self.quantum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acic_trace::TraceSource;

    #[test]
    fn duplicate_profiles_get_distinct_programs() {
        let mt = MultiTenantWorkload::new(1_000)
            .tenant(AppProfile::web_search(), 5_000)
            .tenant(AppProfile::web_search(), 5_000)
            .build();
        let a: Vec<_> = mt.tenants()[0].iter().take(200).collect();
        let b: Vec<_> = mt.tenants()[1].iter().take(200).collect();
        assert_ne!(a, b, "same profile must reseed per tenant");
    }

    #[test]
    fn deterministic_under_one_seed() {
        let build = || {
            MultiTenantWorkload::new(500)
                .seed(42)
                .tenant(AppProfile::web_search(), 3_000)
                .tenant(AppProfile::media_streaming(), 3_000)
                .build()
        };
        let a: Vec<_> = build().iter().collect();
        let b: Vec<_> = build().iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_master_seeds_differ() {
        let stream = |seed| {
            MultiTenantWorkload::new(500)
                .seed(seed)
                .tenant(AppProfile::web_search(), 3_000)
                .build()
                .iter()
                .collect::<Vec<_>>()
        };
        assert_ne!(stream(1), stream(2));
    }

    #[test]
    fn tenant_address_spaces_overlap() {
        // The whole point: different tenants reuse the same VA range,
        // so an untagged cache would alias them.
        let mt = MultiTenantWorkload::new(2_000)
            .suite_tenants(2, 10_000)
            .build();
        let mut min_max = [(u64::MAX, 0u64); 2];
        for i in mt.iter() {
            let (lo, hi) = &mut min_max[i.asid().raw() as usize];
            *lo = (*lo).min(i.pc().raw());
            *hi = (*hi).max(i.pc().raw());
        }
        let (lo0, hi0) = min_max[0];
        let (lo1, hi1) = min_max[1];
        assert!(lo0 < hi1 && lo1 < hi0, "VA ranges must overlap");
    }

    #[test]
    fn len_hint_is_total_budget() {
        let mt = MultiTenantWorkload::new(100)
            .suite_tenants(3, 2_000)
            .build();
        assert_eq!(mt.len_hint(), Some(6_000));
        assert_eq!(mt.iter().count(), 6_000);
    }
}

//! Workload *specifications*: the declarative identity of one
//! experiment cell's instruction stream.
//!
//! A [`WorkloadSpec`] names what runs — one application, or a
//! quantum-scheduled multi-tenant interleave — without generating
//! anything. The experiment harness keys its scheduling on specs:
//! every distinct spec is frozen **exactly once** into a
//! [`PackedTrace`] ([`WorkloadSpec::materialize`]) and every
//! configuration row then replays the shared frozen trace, instead of
//! paying the Markov-walker generation cost once per (config × spec)
//! grid cell. The frozen trace carries the same name as the generator
//! would, so [`acic_trace::TraceSource::seed`]-derived simulator
//! state is bit-identical between generator-backed and packed-replay
//! runs.

use crate::multi_tenant::MultiTenantWorkload;
use crate::profile::AppProfile;
use crate::SyntheticWorkload;
use acic_trace::{PackedTrace, TraceSource};

/// One cell's workload in an experiment grid: a single application,
/// or a quantum-scheduled multi-tenant interleave.
///
/// The grid instruction budget is the *total* per cell either way —
/// a multi-tenant cell splits it across its tenants (evenly, with the
/// remainder spread over the first tenants) so cells stay
/// cycle-comparable and the composed trace length equals the budget
/// exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// One application, the whole budget.
    Single(AppProfile),
    /// `profiles` interleaved with `quantum` instructions per
    /// timeslice.
    MultiTenant {
        /// Tenant profiles (PCs overlap across tenants by design).
        profiles: Vec<AppProfile>,
        /// Context-switch quantum in instructions.
        quantum: u64,
    },
}

/// Splits a total instruction budget across `tenants`, distributing
/// the division remainder one instruction at a time over the first
/// tenants — the per-tenant budgets always sum to `total` exactly
/// (plain `total / tenants` silently dropped up to `tenants - 1`
/// instructions per cell).
pub fn split_budget(total: u64, tenants: usize) -> Vec<u64> {
    let n = tenants.max(1) as u64;
    let base = total / n;
    let rem = total % n;
    (0..n).map(|i| base + u64::from(i < rem)).collect()
}

/// Instruction budgets for a multi-fidelity ladder over a full
/// per-cell budget: one budget per rung, ascending, ending at `full`.
///
/// Each rung `r` (of `rungs`) gets `full >> ((rungs - 1 - r) * 4)`
/// floored at `min` — a ×16 step per rung, so a 3-rung ladder over a
/// 20M budget is 78k / 1.25M / 20M. The coarse rungs are *prefixes*
/// of the full-budget trace (see `acic_trace::Truncated`), never
/// fresh generations at the smaller budget: multi-tenant interleaving
/// schedules depend on the total budget, so a re-generation at budget
/// `b < full` would be a different trace and rung statistics would
/// not converge toward the full-budget answer.
pub fn ladder_budgets(full: u64, rungs: usize, min: u64) -> Vec<u64> {
    let rungs = rungs.max(1);
    (0..rungs)
        .map(|r| {
            let shift = ((rungs - 1 - r) * 4).min(63) as u32;
            (full >> shift).clamp(min.min(full), full)
        })
        .collect()
}

impl WorkloadSpec {
    /// Wraps a list of applications as single-tenant specs.
    pub fn singles(apps: &[AppProfile]) -> Vec<WorkloadSpec> {
        apps.iter().cloned().map(WorkloadSpec::Single).collect()
    }

    /// Short label for figure columns.
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Single(p) => crate::short_name(&p.name),
            WorkloadSpec::MultiTenant { profiles, quantum } => {
                format!("{}ten/q{}k", profiles.len(), quantum / 1000)
            }
        }
    }

    /// Filesystem-safe identity of (spec, budget) for the on-disk
    /// record/replay store: lowercase alphanumerics, `.`, `_` and `-`
    /// only, unique per distinct spec shape and instruction budget.
    pub fn store_key(&self, instructions: u64) -> String {
        let body = match self {
            WorkloadSpec::Single(p) => p.name.clone(),
            WorkloadSpec::MultiTenant { profiles, quantum } => format!(
                "mt{}q{}-{}",
                profiles.len(),
                quantum,
                profiles
                    .iter()
                    .map(|p| p.name.as_str())
                    .collect::<Vec<_>>()
                    .join("+")
            ),
        };
        let sanitized: String = body
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        format!("{sanitized}-{instructions}")
    }

    /// Opens this spec as a live generator with a total budget of
    /// `instructions` — the un-frozen path ([`WorkloadSpec::materialize`]
    /// encodes exactly this stream).
    pub fn generator(&self, instructions: u64) -> GeneratedWorkload {
        match self {
            WorkloadSpec::Single(profile) => GeneratedWorkload::Single(Box::new(
                SyntheticWorkload::with_instructions(profile.clone(), instructions),
            )),
            WorkloadSpec::MultiTenant { profiles, quantum } => {
                let budgets = split_budget(instructions, profiles.len());
                let mut builder = MultiTenantWorkload::new(*quantum);
                for (p, b) in profiles.iter().zip(budgets) {
                    builder = builder.tenant(p.clone(), b);
                }
                GeneratedWorkload::MultiTenant(builder.build())
            }
        }
    }

    /// Freezes this spec into an immutable [`PackedTrace`]: one
    /// generation pass, then any number of zero-copy replays.
    ///
    /// The frozen trace is bit-identical to the generator stream
    /// (same instructions, same ASID boundaries, same name and
    /// therefore the same derived seeds), and its length equals the
    /// requested budget exactly — asserted here, which is what pins
    /// the multi-tenant remainder distribution of [`split_budget`].
    pub fn materialize(&self, instructions: u64) -> PackedTrace {
        let packed = match self.generator(instructions) {
            GeneratedWorkload::Single(wl) => PackedTrace::from_source(wl.as_ref()),
            GeneratedWorkload::MultiTenant(wl) => PackedTrace::from_source(&wl),
        };
        assert_eq!(
            packed.len(),
            instructions,
            "composed trace length must equal the requested budget for {:?}",
            self.label()
        );
        packed
    }
}

impl From<AppProfile> for WorkloadSpec {
    fn from(p: AppProfile) -> Self {
        WorkloadSpec::Single(p)
    }
}

/// A spec opened as a live generator (the un-frozen trace source).
#[derive(Debug)]
pub enum GeneratedWorkload {
    /// Single-tenant synthetic program (boxed: the generated
    /// program is hundreds of bytes of profile + call-graph tables,
    /// far larger than the interleaver variant).
    Single(Box<SyntheticWorkload>),
    /// Quantum-interleaved multi-tenant composition.
    MultiTenant(acic_trace::InterleavedTrace<SyntheticWorkload>),
}

impl TraceSource for GeneratedWorkload {
    type Iter<'a> = GeneratedIter<'a>;

    fn iter(&self) -> Self::Iter<'_> {
        match self {
            GeneratedWorkload::Single(w) => GeneratedIter::Single(w.iter()),
            GeneratedWorkload::MultiTenant(w) => GeneratedIter::MultiTenant(w.iter()),
        }
    }

    fn name(&self) -> &str {
        match self {
            GeneratedWorkload::Single(w) => w.name(),
            GeneratedWorkload::MultiTenant(w) => w.name(),
        }
    }

    fn len_hint(&self) -> Option<u64> {
        match self {
            GeneratedWorkload::Single(w) => w.len_hint(),
            GeneratedWorkload::MultiTenant(w) => w.len_hint(),
        }
    }
}

/// One pass over a [`GeneratedWorkload`].
#[derive(Debug)]
pub enum GeneratedIter<'a> {
    /// Single-tenant walker pass.
    Single(<SyntheticWorkload as TraceSource>::Iter<'a>),
    /// Interleaved multi-tenant pass.
    MultiTenant(<acic_trace::InterleavedTrace<SyntheticWorkload> as TraceSource>::Iter<'a>),
}

impl Iterator for GeneratedIter<'_> {
    type Item = acic_trace::Instr;

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        match self {
            GeneratedIter::Single(it) => it.next(),
            GeneratedIter::MultiTenant(it) => it.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_budget_distributes_the_remainder() {
        assert_eq!(split_budget(10, 3), vec![4, 3, 3]);
        assert_eq!(split_budget(9, 3), vec![3, 3, 3]);
        assert_eq!(split_budget(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(split_budget(0, 2), vec![0, 0]);
        assert_eq!(split_budget(7, 1), vec![7]);
        for (total, tenants) in [(1_000_003u64, 4usize), (17, 5), (100, 7)] {
            let parts = split_budget(total, tenants);
            assert_eq!(parts.iter().sum::<u64>(), total);
            assert!(parts.iter().max().unwrap() - parts.iter().min().unwrap() <= 1);
        }
    }

    #[test]
    fn materialize_single_matches_generator_bit_for_bit() {
        let spec = WorkloadSpec::Single(AppProfile::web_search());
        let packed = spec.materialize(5_000);
        let gen = spec.generator(5_000);
        assert_eq!(packed.len(), 5_000);
        assert_eq!(packed.name(), gen.name());
        assert_eq!(packed.seed(), gen.seed());
        assert!(packed.iter().eq(gen.iter()));
    }

    #[test]
    fn materialize_multi_tenant_hits_the_budget_exactly() {
        // 10_001 over 3 tenants: the old `/` split would compose
        // 9_999 instructions; the remainder distribution restores the
        // missing two.
        let spec = WorkloadSpec::MultiTenant {
            profiles: vec![
                AppProfile::web_search(),
                AppProfile::tpc_c(),
                AppProfile::media_streaming(),
            ],
            quantum: 500,
        };
        let packed = spec.materialize(10_001);
        assert_eq!(packed.len(), 10_001);
        assert_eq!(packed.iter().count(), 10_001);
        let gen = spec.generator(10_001);
        assert!(packed.iter().eq(gen.iter()), "frozen == generated");
    }

    #[test]
    fn store_keys_are_filesystem_safe_and_distinct() {
        let a = WorkloadSpec::Single(AppProfile::web_search()).store_key(1_000);
        let b = WorkloadSpec::Single(AppProfile::web_search()).store_key(2_000);
        let mt = WorkloadSpec::MultiTenant {
            profiles: vec![AppProfile::web_search(), AppProfile::tpc_c()],
            quantum: 10_000,
        }
        .store_key(1_000);
        assert_ne!(a, b);
        assert_ne!(a, mt);
        for key in [&a, &b, &mt] {
            assert!(
                key.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-'),
                "unsafe char in {key}"
            );
        }
    }

    #[test]
    fn ladder_budgets_ascend_to_full() {
        assert_eq!(
            ladder_budgets(20_000_000, 3, 30_000),
            vec![78_125, 1_250_000, 20_000_000]
        );
        assert_eq!(
            ladder_budgets(1_000_000, 2, 50_000),
            vec![62_500, 1_000_000]
        );
        // The floor kicks in for tiny full budgets...
        assert_eq!(
            ladder_budgets(100_000, 3, 30_000),
            vec![30_000, 30_000, 100_000]
        );
        // ...but never raises a rung above `full`.
        assert_eq!(ladder_budgets(10_000, 2, 50_000), vec![10_000, 10_000]);
        assert_eq!(ladder_budgets(5_000, 1, 1), vec![5_000]);
        for (full, budgets) in [
            (20_000_000, ladder_budgets(20_000_000, 4, 1_000)),
            (123_457, ladder_budgets(123_457, 3, 10)),
            (42, ladder_budgets(42, 5, 1)),
        ] {
            assert!(budgets.windows(2).all(|w| w[0] <= w[1]), "{budgets:?}");
            assert_eq!(*budgets.last().unwrap(), full);
        }
    }

    #[test]
    fn single_tenant_generation_is_prefix_stable() {
        // A single-tenant generator at a smaller budget is exactly a
        // prefix of the same app at a larger budget — this is what
        // lets the DSE ladder's coarse rungs reuse the one frozen
        // full-budget trace via a `Truncated` view. (Multi-tenant
        // specs are NOT prefix-stable: `split_budget` depends on the
        // total, which is why rungs truncate instead of regenerate.)
        let spec = WorkloadSpec::Single(AppProfile::web_search());
        let small: Vec<_> = spec.generator(2_000).iter().collect();
        let big = spec.generator(8_000);
        let prefix: Vec<_> = big.iter().take(2_000).collect();
        assert_eq!(small, prefix);
        // And the frozen trace's truncated view matches both.
        let packed = spec.materialize(8_000);
        let truncated = acic_trace::Truncated::new(&packed, 2_000);
        assert!(truncated.iter().eq(small.iter().copied()));
        assert_eq!(truncated.seed(), packed.seed());
    }

    #[test]
    fn labels_match_the_figure_column_convention() {
        let s = WorkloadSpec::Single(AppProfile::web_search());
        assert_eq!(s.label(), "web-search");
        let mt = WorkloadSpec::MultiTenant {
            profiles: vec![AppProfile::web_search(), AppProfile::tpc_c()],
            quantum: 10_000,
        };
        assert_eq!(mt.label(), "2ten/q10k");
    }
}

//! Deterministic hashing helpers.
//!
//! Every indexed structure in the reproduction (HRT, CSHR partial tags,
//! GHRP/SHiP/Hawkeye signature tables, TAGE indices) needs a cheap,
//! deterministic, well-mixed hash. We use the SplitMix64 finalizer,
//! which is a strong 64-bit mixer, plus folding helpers to reduce a
//! hash to an n-bit index or partial tag.
//!
//! [`SplitMix64`] additionally serves as a tiny deterministic PRNG for
//! components that need sampling decisions (DSB's probabilistic bypass,
//! OBM's pair sampling) without pulling a full RNG dependency into the
//! simulator.

/// Mixes a 64-bit value through the SplitMix64 finalizer.
///
/// # Examples
///
/// ```
/// use acic_types::hash::mix64;
///
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(42), mix64(42)); // deterministic
/// ```
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Combines two 64-bit values into one hash.
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b))
}

/// Folds a 64-bit hash down to `bits` bits by XOR-ing all the
/// `bits`-wide slices of the value together.
///
/// This is the classic folded-history technique used by TAGE and is
/// also how we form the paper's 12-bit CSHR partial tags from full
/// block addresses.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 63.
///
/// # Examples
///
/// ```
/// use acic_types::hash::fold;
///
/// let h = 0xdead_beef_1234_5678u64;
/// assert!(fold(h, 12) < (1 << 12));
/// ```
#[inline]
pub fn fold(hash: u64, bits: u32) -> u64 {
    assert!(bits > 0 && bits < 64, "bits must be in 1..=63");
    let mask = (1u64 << bits) - 1;
    let mut out = 0u64;
    let mut rest = hash;
    while rest != 0 {
        out ^= rest & mask;
        rest >>= bits;
    }
    out
}

/// A small deterministic PRNG (SplitMix64 stream).
///
/// Not cryptographic; used for sampling decisions inside policies so
/// simulations stay reproducible without threading an external RNG
/// through every component.
///
/// # Examples
///
/// ```
/// use acic_types::hash::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        mix64(self.state)
    }

    /// Uniform value in `0..bound` (`bound` must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift range reduction; bias is negligible for the
        // small bounds used by policies.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli draw with probability `num / denom`.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is 0.
    #[inline]
    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.next_below(denom) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_spreads() {
        let a = mix64(0);
        let b = mix64(1);
        assert_ne!(a, b);
        // Low bits should differ too (important for masking).
        assert_ne!(a & 0xfff, b & 0xfff);
    }

    #[test]
    fn fold_stays_in_range() {
        for bits in 1..20 {
            for x in [0u64, 1, u64::MAX, 0x0123_4567_89ab_cdef] {
                assert!(fold(mix64(x), bits) < (1u64 << bits));
            }
        }
    }

    #[test]
    fn fold_uses_high_bits() {
        // Two values differing only in the top bits must (for this
        // mixer-free call) fold to different values.
        let a = 0x8000_0000_0000_0000u64;
        let b = 0u64;
        assert_ne!(fold(a, 12), fold(b, 12));
    }

    #[test]
    fn splitmix_next_below_bounds() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(rng.next_below(10) < 10);
        }
    }

    #[test]
    fn splitmix_chance_rate_is_plausible() {
        let mut rng = SplitMix64::new(5);
        let hits = (0..10_000).filter(|_| rng.chance(1, 4)).count();
        // 25% +/- 3% over 10k draws.
        assert!((2200..=2800).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn mix2_depends_on_both_inputs() {
        assert_ne!(mix2(1, 2), mix2(2, 1));
        assert_ne!(mix2(1, 2), mix2(1, 3));
    }

    #[test]
    fn mix64_matches_splitmix64_reference_vectors() {
        // Known-answer vectors for the SplitMix64 finalizer. These pin
        // the exact bit pattern: simulation seeds, CSHR partial tags
        // and predictor indices all flow through mix64, so silently
        // changing it would silently change every experiment.
        assert_eq!(mix64(0), 0xe220a8397b1dcdaf);
        assert_eq!(mix64(1), 0x910a2dec89025cc1);
        assert_eq!(mix64(2), 0x975835de1c9756ce);
        assert_eq!(mix64(0x0123_4567_89ab_cdef), 0x157a3807a48faa9d);
        assert_eq!(mix64(u64::MAX), 0xe4d971771b652c20);
    }

    #[test]
    fn fold_is_deterministic_and_boundary_safe() {
        for bits in [1u32, 2, 12, 32, 63] {
            for x in [0u64, 1, 0xdead_beef, u64::MAX, 1u64 << 63] {
                let a = fold(x, bits);
                let b = fold(x, bits);
                assert_eq!(a, b, "fold must be pure (x={x:#x}, bits={bits})");
                if bits < 64 {
                    assert!(a < (1u64 << bits));
                }
            }
        }
        // bits = 63 keeps the top bit's contribution.
        assert_ne!(fold(1u64 << 63, 63), 0);
    }

    #[test]
    fn fold_xors_all_slices() {
        // 12-bit fold of three stacked slices must equal their XOR.
        let x = (0xabcu64 << 24) | (0x123u64 << 12) | 0x456u64;
        assert_eq!(fold(x, 12), 0xabc ^ 0x123 ^ 0x456);
    }
}

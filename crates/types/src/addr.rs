//! Byte addresses and cache-block addresses.
//!
//! All caches in this workspace operate on 64 B blocks, matching the
//! paper's simulated hierarchy (Table II). [`Addr`] is a full byte
//! address (an instruction PC or data address); [`BlockAddr`] is the
//! address shifted right by [`BLOCK_OFFSET_BITS`]. Keeping them as
//! distinct newtypes prevents the classic bug of indexing a cache with
//! an unshifted address.

use core::fmt;

/// Bytes per cache block (64 B, as in the paper).
pub const BLOCK_BYTES: u64 = 64;
/// log2([`BLOCK_BYTES`]).
pub const BLOCK_OFFSET_BITS: u32 = 6;

/// A full byte address (instruction PC or data address).
///
/// # Examples
///
/// ```
/// use acic_types::{Addr, BLOCK_BYTES};
///
/// let a = Addr::new(0x1000);
/// assert_eq!(a.offset_in_block(), 0);
/// assert_eq!((a + 4).raw(), 0x1004);
/// assert_eq!(a.block(), (a + (BLOCK_BYTES - 1)).block());
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the 64 B block containing this address.
    #[inline]
    pub const fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_OFFSET_BITS)
    }

    /// Returns the byte offset of this address within its block.
    #[inline]
    pub const fn offset_in_block(self) -> u64 {
        self.0 & (BLOCK_BYTES - 1)
    }
}

impl core::ops::Add<u64> for Addr {
    type Output = Addr;
    #[inline]
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0.wrapping_add(rhs))
    }
}

impl From<u64> for Addr {
    #[inline]
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A 64 B cache-block address (byte address >> 6).
///
/// # Examples
///
/// ```
/// use acic_types::{Addr, BlockAddr};
///
/// let b = Addr::new(0x40).block();
/// assert_eq!(b, BlockAddr::new(1));
/// assert_eq!(b.first_byte(), Addr::new(0x40));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a raw (already shifted) value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        BlockAddr(raw)
    }

    /// Returns the raw (shifted) value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte in this block.
    #[inline]
    pub const fn first_byte(self) -> Addr {
        Addr(self.0 << BLOCK_OFFSET_BITS)
    }

    /// Returns the block `n` blocks after this one.
    #[inline]
    pub const fn offset(self, n: u64) -> BlockAddr {
        BlockAddr(self.0.wrapping_add(n))
    }

    /// Cache set index for a cache with `num_sets` sets (must be a
    /// power of two).
    #[inline]
    pub const fn set_index(self, num_sets: usize) -> usize {
        (self.0 as usize) & (num_sets - 1)
    }

    /// Tag bits above the set index for a cache with `num_sets` sets.
    #[inline]
    pub const fn tag(self, num_sets: usize) -> u64 {
        self.0 >> num_sets.trailing_zeros()
    }
}

impl From<u64> for BlockAddr {
    #[inline]
    fn from(raw: u64) -> Self {
        BlockAddr(raw)
    }
}

impl fmt::Debug for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockAddr({:#x})", self.0)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_address() {
        assert_eq!(Addr::new(0).block(), BlockAddr::new(0));
        assert_eq!(Addr::new(63).block(), BlockAddr::new(0));
        assert_eq!(Addr::new(64).block(), BlockAddr::new(1));
        assert_eq!(Addr::new(0xfff).block(), BlockAddr::new(0x3f));
    }

    #[test]
    fn offset_in_block_wraps() {
        assert_eq!(Addr::new(0x47).offset_in_block(), 7);
        assert_eq!(Addr::new(0x40).offset_in_block(), 0);
    }

    #[test]
    fn set_index_and_tag_partition_block_bits() {
        let b = BlockAddr::new(0b1011_0110);
        assert_eq!(b.set_index(16), 0b0110);
        assert_eq!(b.tag(16), 0b1011);
        // Recombining tag and set index gives back the block address.
        assert_eq!((b.tag(16) << 4) | b.set_index(16) as u64, b.raw());
    }

    #[test]
    fn add_is_wrapping() {
        let a = Addr::new(u64::MAX);
        assert_eq!((a + 1).raw(), 0);
    }

    #[test]
    fn first_byte_round_trip() {
        let b = BlockAddr::new(123);
        assert_eq!(b.first_byte().block(), b);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", Addr::new(0x40)), "0x40");
        assert_eq!(format!("{:x}", BlockAddr::new(0xbeef)), "beef");
    }
}

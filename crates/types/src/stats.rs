//! Small statistics helpers used by the experiment harness.
//!
//! The paper reports *geometric-mean* speedups across applications and
//! arithmetic-mean MPKI reductions; these helpers implement both plus a
//! percentage formatter used by the figure printers.

/// Arithmetic mean of a slice, or `None` if empty.
///
/// # Examples
///
/// ```
/// use acic_types::stats::mean;
///
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
/// assert_eq!(mean(&[]), None);
/// ```
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Geometric mean of a slice of positive values, or `None` if the
/// slice is empty or contains a non-positive value.
///
/// This is the mean the paper uses for speedups ("1.0223 geomean
/// speedup").
///
/// # Examples
///
/// ```
/// use acic_types::stats::gmean;
///
/// let g = gmean(&[1.0, 4.0]).unwrap();
/// assert!((g - 2.0).abs() < 1e-12);
/// assert_eq!(gmean(&[1.0, -1.0]), None);
/// ```
pub fn gmean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Formats a fraction as a percentage string with two decimals, e.g.
/// `0.1814` becomes `"18.14%"`.
///
/// # Examples
///
/// ```
/// use acic_types::stats::pct;
///
/// assert_eq!(pct(0.5585), "55.85%");
/// assert_eq!(pct(-0.01), "-1.00%");
/// ```
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// A running tally of events out of opportunities, e.g. hits out of
/// accesses or correct predictions out of predictions.
///
/// # Examples
///
/// ```
/// use acic_types::stats::Ratio;
///
/// let mut hits = Ratio::default();
/// hits.record(true);
/// hits.record(false);
/// hits.record(true);
/// assert_eq!(hits.numerator(), 2);
/// assert_eq!(hits.denominator(), 3);
/// assert!((hits.fraction() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Reassembles a ratio from its raw sides — the inverse of
    /// [`Ratio::numerator`]/[`Ratio::denominator`], for
    /// deserializing persisted statistics.
    pub fn from_parts(hits: u64, total: u64) -> Ratio {
        Ratio { hits, total }
    }

    /// Records one opportunity; `hit` says whether the event occurred.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        self.hits += hit as u64;
    }

    /// Adds both sides of another ratio into this one.
    pub fn merge(&mut self, other: Ratio) {
        self.hits += other.hits;
        self.total += other.total;
    }

    /// Number of events.
    pub fn numerator(&self) -> u64 {
        self.hits
    }

    /// Number of opportunities.
    pub fn denominator(&self) -> u64 {
        self.total
    }

    /// Event rate, or 0.0 when no opportunities were recorded.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(gmean(&[]), None);
    }

    #[test]
    fn gmean_matches_hand_computation() {
        let vals = [1.02, 1.04, 0.98];
        let expected = (1.02f64 * 1.04 * 0.98).powf(1.0 / 3.0);
        assert!((gmean(&vals).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn gmean_rejects_nonpositive() {
        assert_eq!(gmean(&[1.0, 0.0]), None);
    }

    #[test]
    fn gmean_le_mean() {
        // AM-GM inequality sanity.
        let vals = [1.0, 2.0, 3.0, 4.0];
        assert!(gmean(&vals).unwrap() <= mean(&vals).unwrap());
    }

    #[test]
    fn ratio_merge() {
        let mut a = Ratio::default();
        a.record(true);
        let mut b = Ratio::default();
        b.record(false);
        b.record(true);
        a.merge(b);
        assert_eq!(a.numerator(), 2);
        assert_eq!(a.denominator(), 3);
    }

    #[test]
    fn from_parts_round_trips_the_sides() {
        let mut r = Ratio::default();
        r.record(true);
        r.record(false);
        let rebuilt = Ratio::from_parts(r.numerator(), r.denominator());
        assert_eq!(rebuilt, r);
    }

    #[test]
    fn empty_ratio_fraction_is_zero() {
        assert_eq!(Ratio::default().fraction(), 0.0);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.0223), "2.23%");
    }
}

//! Common types and small data structures shared across the ACIC
//! reproduction workspace.
//!
//! This crate is dependency-free and holds the vocabulary used by every
//! other crate:
//!
//! * [`Addr`] / [`BlockAddr`] — byte and 64 B cache-block addresses.
//! * [`SatCounter`] — saturating counters (the Pattern Table, SHCT,
//!   bimodal predictors, …).
//! * [`HistoryReg`] — fixed-width shift registers (HRT entries, global
//!   branch history).
//! * [`LruStamps`] — recency tracking for set-associative structures.
//! * [`FenwickTree`] — prefix-sum tree used by the stack-distance
//!   analyzer.
//! * [`hash`] — deterministic 64-bit mixing and folding helpers.
//! * [`stats`] — mean / geometric-mean helpers used by the experiment
//!   harness.
//!
//! # Examples
//!
//! ```
//! use acic_types::{Addr, BlockAddr, SatCounter};
//!
//! let pc = Addr::new(0x40_1234);
//! let block = pc.block();
//! assert_eq!(block, BlockAddr::new(0x40_1234 >> 6));
//!
//! let mut ctr = SatCounter::new(5, 16);
//! ctr.increment();
//! assert_eq!(ctr.value(), 17);
//! ```

pub mod addr;
pub mod asid;
pub mod counter;
pub mod fenwick;
pub mod hash;
pub mod lru;
pub mod stats;

pub use addr::{Addr, BlockAddr, BLOCK_BYTES, BLOCK_OFFSET_BITS};
pub use asid::{Asid, TaggedBlock, ASID_IDENT_SHIFT};
pub use counter::{HistoryReg, SatCounter};
pub use fenwick::FenwickTree;
pub use lru::LruStamps;

/// A simulation cycle count.
pub type Cycle = u64;

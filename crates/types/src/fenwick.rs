//! A Fenwick (binary indexed) tree over `i64` values.
//!
//! Used by the stack-distance analyzer in `acic-trace`: positions of
//! most-recent block accesses are marked with 1, and the number of
//! distinct blocks between two accesses is a suffix sum.

/// A Fenwick tree supporting point update and prefix sum in `O(log n)`.
///
/// # Examples
///
/// ```
/// use acic_types::FenwickTree;
///
/// let mut t = FenwickTree::new(8);
/// t.add(2, 1);
/// t.add(5, 1);
/// assert_eq!(t.prefix_sum(2), 1); // positions 0..=2
/// assert_eq!(t.prefix_sum(7), 2);
/// assert_eq!(t.range_sum(3, 7), 1);
/// ```
#[derive(Clone, Debug)]
pub struct FenwickTree {
    tree: Vec<i64>,
}

impl FenwickTree {
    /// Creates a tree over `len` positions, all zero.
    pub fn new(len: usize) -> Self {
        FenwickTree {
            tree: vec![0; len + 1],
        }
    }

    /// Number of positions covered.
    pub fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Whether the tree covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds `delta` at position `pos` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    pub fn add(&mut self, pos: usize, delta: i64) {
        assert!(pos < self.len(), "position {pos} out of bounds");
        let mut i = pos + 1;
        while i < self.tree.len() {
            self.tree[i] += delta;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    pub fn prefix_sum(&self, pos: usize) -> i64 {
        assert!(pos < self.len(), "position {pos} out of bounds");
        let mut i = pos + 1;
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Sum of positions `lo..=hi` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `hi >= self.len()` or `lo > hi`.
    pub fn range_sum(&self, lo: usize, hi: usize) -> i64 {
        assert!(lo <= hi, "range is inverted");
        let below = if lo == 0 { 0 } else { self.prefix_sum(lo - 1) };
        self.prefix_sum(hi) - below
    }

    /// Total over all positions, or 0 if empty.
    pub fn total(&self) -> i64 {
        if self.is_empty() {
            0
        } else {
            self.prefix_sum(self.len() - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t = FenwickTree::new(0);
        assert!(t.is_empty());
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn point_updates_accumulate() {
        let mut t = FenwickTree::new(10);
        t.add(3, 2);
        t.add(3, 3);
        assert_eq!(t.range_sum(3, 3), 5);
        assert_eq!(t.total(), 5);
    }

    #[test]
    fn matches_naive_prefix_sums() {
        let mut t = FenwickTree::new(32);
        let mut naive = vec![0i64; 32];
        // Deterministic pseudo-random updates.
        let mut x: u64 = 0x12345;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pos = (x >> 33) as usize % 32;
            let delta = ((x >> 17) as i64 % 7) - 3;
            t.add(pos, delta);
            naive[pos] += delta;
        }
        let mut run = 0;
        for (i, v) in naive.iter().enumerate() {
            run += v;
            assert_eq!(t.prefix_sum(i), run, "prefix mismatch at {i}");
        }
    }

    #[test]
    fn negative_values_supported() {
        let mut t = FenwickTree::new(4);
        t.add(0, -5);
        t.add(2, 5);
        assert_eq!(t.total(), 0);
        assert_eq!(t.prefix_sum(1), -5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_add_panics() {
        let mut t = FenwickTree::new(4);
        t.add(4, 1);
    }
}

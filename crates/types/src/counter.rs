//! Saturating counters and fixed-width shift-history registers.
//!
//! These are the two primitive state elements of every predictor in the
//! paper: the Pattern Table holds [`SatCounter`]s, the History Register
//! Table holds [`HistoryReg`]s, and the same primitives back SHiP's
//! SHCT, GHRP's prediction tables, Hawkeye's training counters and the
//! TAGE tables.

use core::fmt;

/// A saturating up/down counter with a configurable bit width (1..=16).
///
/// The counter is considered *high* (a "take" / "admit" / "live"
/// prediction) when its value is at or above the midpoint `2^(w-1)`.
///
/// # Examples
///
/// ```
/// use acic_types::SatCounter;
///
/// // The paper's PT entries are 5-bit counters.
/// let mut pt = SatCounter::new(5, 16);
/// assert!(pt.is_high());
/// pt.decrement();
/// assert!(!pt.is_high());
/// for _ in 0..100 {
///     pt.increment();
/// }
/// assert_eq!(pt.value(), 31); // saturates at 2^5 - 1
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SatCounter {
    value: u16,
    max: u16,
}

impl SatCounter {
    /// Creates a `width`-bit counter starting at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 16, or if `initial`
    /// does not fit in `width` bits.
    pub fn new(width: u32, initial: u16) -> Self {
        assert!((1..=16).contains(&width), "width must be in 1..=16");
        let max = ((1u32 << width) - 1) as u16;
        assert!(initial <= max, "initial value {initial} exceeds max {max}");
        SatCounter {
            value: initial,
            max,
        }
    }

    /// Creates a `width`-bit counter starting at the midpoint
    /// (`2^(w-1)`), i.e. weakly high.
    pub fn new_weakly_high(width: u32) -> Self {
        let mid = 1u16 << (width - 1);
        SatCounter::new(width, mid)
    }

    /// Creates a `width`-bit counter starting just below the midpoint,
    /// i.e. weakly low.
    pub fn new_weakly_low(width: u32) -> Self {
        let mid = 1u16 << (width - 1);
        SatCounter::new(width, mid - 1)
    }

    /// Current value.
    #[inline]
    pub fn value(self) -> u16 {
        self.value
    }

    /// Maximum representable value (`2^w - 1`).
    #[inline]
    pub fn max(self) -> u16 {
        self.max
    }

    /// Midpoint threshold (`2^(w-1)`).
    #[inline]
    pub fn midpoint(self) -> u16 {
        (self.max >> 1) + 1
    }

    /// Whether the counter is at or above its midpoint.
    #[inline]
    pub fn is_high(self) -> bool {
        self.value >= self.midpoint()
    }

    /// Whether the counter is saturated at its maximum.
    #[inline]
    pub fn is_max(self) -> bool {
        self.value == self.max
    }

    /// Whether the counter is saturated at zero.
    #[inline]
    pub fn is_min(self) -> bool {
        self.value == 0
    }

    /// Increments, saturating at `2^w - 1`.
    #[inline]
    pub fn increment(&mut self) {
        if self.value < self.max {
            self.value += 1;
        }
    }

    /// Decrements, saturating at 0.
    #[inline]
    pub fn decrement(&mut self) {
        if self.value > 0 {
            self.value -= 1;
        }
    }

    /// Increments if `up` is true, otherwise decrements.
    #[inline]
    pub fn update(&mut self, up: bool) {
        if up {
            self.increment()
        } else {
            self.decrement()
        }
    }

    /// Sets the counter to an explicit value, clamping to the maximum.
    #[inline]
    pub fn set(&mut self, value: u16) {
        self.value = value.min(self.max);
    }
}

impl fmt::Debug for SatCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SatCounter({}/{})", self.value, self.max)
    }
}

/// A fixed-width shift register of outcome bits, oldest bit discarded
/// on overflow — the HRT entry of the paper's two-level predictor.
///
/// New outcomes are shifted in at the least-significant bit, exactly as
/// described in §III-A of the paper.
///
/// # Examples
///
/// ```
/// use acic_types::HistoryReg;
///
/// let mut h = HistoryReg::new(4);
/// h.push(true);
/// h.push(false);
/// h.push(true);
/// assert_eq!(h.value(), 0b101);
/// for _ in 0..4 {
///     h.push(true);
/// }
/// assert_eq!(h.value(), 0b1111); // width-limited
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistoryReg {
    bits: u32,
    width: u32,
}

impl HistoryReg {
    /// Creates an empty (all-zero) history of `width` bits (1..=32).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 32.
    pub fn new(width: u32) -> Self {
        assert!((1..=32).contains(&width), "width must be in 1..=32");
        HistoryReg { bits: 0, width }
    }

    /// Shifts the register left and inserts `outcome` at the LSB.
    #[inline]
    pub fn push(&mut self, outcome: bool) {
        let mask = if self.width == 32 {
            u32::MAX
        } else {
            (1u32 << self.width) - 1
        };
        self.bits = ((self.bits << 1) | outcome as u32) & mask;
    }

    /// Current history pattern, usable directly as a table index.
    #[inline]
    pub fn value(self) -> u32 {
        self.bits
    }

    /// Number of bits tracked.
    #[inline]
    pub fn width(self) -> u32 {
        self.width
    }

    /// Number of distinct patterns (`2^width`), i.e. the size a
    /// pattern table indexed by this register must have.
    #[inline]
    pub fn pattern_count(self) -> usize {
        1usize << self.width
    }
}

impl fmt::Debug for HistoryReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HistoryReg({:0width$b})",
            self.bits,
            width = self.width as usize
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates_both_ends() {
        let mut c = SatCounter::new(2, 0);
        c.decrement();
        assert_eq!(c.value(), 0);
        for _ in 0..10 {
            c.increment();
        }
        assert_eq!(c.value(), 3);
        assert!(c.is_max());
    }

    #[test]
    fn midpoint_threshold() {
        let c = SatCounter::new(5, 16);
        assert_eq!(c.midpoint(), 16);
        assert!(c.is_high());
        let c = SatCounter::new(5, 15);
        assert!(!c.is_high());
    }

    #[test]
    fn weakly_high_and_low_straddle_midpoint() {
        let hi = SatCounter::new_weakly_high(5);
        let lo = SatCounter::new_weakly_low(5);
        assert!(hi.is_high());
        assert!(!lo.is_high());
        assert_eq!(hi.value() - lo.value(), 1);
    }

    #[test]
    fn update_direction() {
        let mut c = SatCounter::new(3, 4);
        c.update(true);
        assert_eq!(c.value(), 5);
        c.update(false);
        c.update(false);
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn set_clamps() {
        let mut c = SatCounter::new(3, 0);
        c.set(100);
        assert_eq!(c.value(), 7);
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=16")]
    fn zero_width_counter_panics() {
        let _ = SatCounter::new(0, 0);
    }

    #[test]
    fn history_shifts_and_masks() {
        let mut h = HistoryReg::new(4);
        for bit in [true, true, false, true, false] {
            h.push(bit);
        }
        // last four outcomes: 1,0,1,0 -> 0b1010
        assert_eq!(h.value(), 0b1010);
        assert_eq!(h.pattern_count(), 16);
    }

    #[test]
    fn history_full_width() {
        let mut h = HistoryReg::new(32);
        for _ in 0..40 {
            h.push(true);
        }
        assert_eq!(h.value(), u32::MAX);
    }

    #[test]
    fn table_one_pattern_table_size() {
        // Table I: 4-bit histories imply a 16-entry PT.
        let h = HistoryReg::new(4);
        assert_eq!(h.pattern_count(), 16);
    }
}

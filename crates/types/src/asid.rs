//! Address-space identity: [`Asid`] and the ASID-tagged block
//! identity [`TaggedBlock`].
//!
//! Datacenter servers run many processes; a context switch changes
//! which address space the fetch stream's virtual addresses belong
//! to. Two tenants' PCs overlap freely (every process links its hot
//! library code at similar VAs), so a cache block is identified by
//! the *pair* (block address, ASID), exactly as an ASID-tagged L1i
//! disambiguates lines without flushing on every switch.
//!
//! The design constraint honored throughout this module is that the
//! host/single-tenant address space ([`Asid::HOST`], numerically 0)
//! is **bit-identical** to the untagged world: `TaggedBlock` with
//! ASID 0 has the same [`TaggedBlock::ident`], the same set index,
//! the same tag, and the same [`mix64`]-based hash as the bare
//! [`BlockAddr`] had before ASIDs existed. Single-tenant simulations
//! therefore reproduce their pre-ASID results exactly.

use crate::addr::BlockAddr;
use crate::hash::mix64;
use core::fmt;

/// Bit position where the ASID enters the flattened block identity.
///
/// Block addresses are byte addresses shifted right by 6, so a
/// 48-bit-shifted ASID sits far above any realistic code footprint
/// (2^48 blocks = 16 PiB of code); the XOR in
/// [`TaggedBlock::ident`] is thus a disjoint bit-field merge in
/// practice, and exactly the identity function for ASID 0.
pub const ASID_IDENT_SHIFT: u32 = 48;

/// An address-space identifier.
///
/// 16 bits, as in ARMv8 / x86 PCID-class hardware. ASID 0 is the
/// host (single-tenant) space and is the default everywhere, which
/// is what keeps the single-tenant fast path unchanged.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asid(u16);

impl Asid {
    /// The host / single-tenant address space (ASID 0).
    pub const HOST: Asid = Asid(0);

    /// Creates an ASID from a raw value.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        Asid(raw)
    }

    /// Returns the raw value.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Whether this is the host (single-tenant) space.
    #[inline]
    pub const fn is_host(self) -> bool {
        self.0 == 0
    }
}

impl From<u16> for Asid {
    #[inline]
    fn from(raw: u16) -> Self {
        Asid(raw)
    }
}

impl fmt::Debug for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Asid({})", self.0)
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A cache-block identity: block address plus address space.
///
/// This is the unit of tag match, set indexing, and hashing for every
/// indexed structure in the workspace (i-cache tags, i-Filter slots,
/// CSHR partial tags, predictor signatures, victim caches). Both
/// components flow through [`TaggedBlock::ident`], a single `u64`
/// that equals the bare block address for [`Asid::HOST`].
///
/// # Examples
///
/// ```
/// use acic_types::{Asid, BlockAddr, TaggedBlock};
///
/// let b = BlockAddr::new(0x40);
/// let host = TaggedBlock::untagged(b);
/// let tenant = b.with_asid(Asid::new(3));
/// // Same virtual address, different identities:
/// assert_ne!(host, tenant);
/// // Host identity is bit-identical to the bare block address:
/// assert_eq!(host.ident(), b.raw());
/// // The ASID lands in the tag bits, not the index bits:
/// assert_eq!(host.set_index(64), tenant.set_index(64));
/// assert_ne!(host.tag(64), tenant.tag(64));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaggedBlock {
    /// The (virtual) block address.
    pub block: BlockAddr,
    /// The address space the block belongs to.
    pub asid: Asid,
}

impl TaggedBlock {
    /// Creates a tagged block identity.
    #[inline]
    pub const fn new(block: BlockAddr, asid: Asid) -> Self {
        TaggedBlock { block, asid }
    }

    /// A block in the host (single-tenant) address space.
    #[inline]
    pub const fn untagged(block: BlockAddr) -> Self {
        TaggedBlock {
            block,
            asid: Asid::HOST,
        }
    }

    /// The flattened 64-bit identity: block address XOR the ASID
    /// shifted to [`ASID_IDENT_SHIFT`].
    ///
    /// For ASID 0 this *is* the raw block address, which is what
    /// makes single-tenant runs bit-identical to the pre-ASID world.
    /// Every hash and every index below derives from this value, so
    /// the ASID participates in set indexing, tag match, and
    /// [`mix64`]-based hashing through one definition.
    #[inline]
    pub const fn ident(self) -> u64 {
        self.block.raw() ^ ((self.asid.raw() as u64) << ASID_IDENT_SHIFT)
    }

    /// Cache set index for a cache with `num_sets` sets (power of
    /// two). Derived from [`TaggedBlock::ident`]; since the ASID sits
    /// at bit 48 and real set counts are far smaller, the index bits
    /// come from the block address — VIPT-style indexing where the
    /// ASID disambiguates at tag-match time.
    #[inline]
    pub const fn set_index(self, num_sets: usize) -> usize {
        (self.ident() as usize) & (num_sets - 1)
    }

    /// Tag bits above the set index, ASID included.
    #[inline]
    pub const fn tag(self, num_sets: usize) -> u64 {
        self.ident() >> num_sets.trailing_zeros()
    }

    /// Well-mixed 64-bit hash of the identity (SplitMix64 finalizer).
    #[inline]
    pub fn hash(self) -> u64 {
        mix64(self.ident())
    }

    /// The identity reinterpreted as a [`BlockAddr`] key for
    /// structures that index by flat block identity (the reuse
    /// oracle). Equal to `self.block` for the host space.
    #[inline]
    pub const fn oracle_key(self) -> BlockAddr {
        BlockAddr::new(self.ident())
    }

    /// Reconstructs the tagged block from a stored
    /// ([`TaggedBlock::ident`], ASID) pair. Exact for every input
    /// (XOR is self-inverse once the ASID is known), so compact tag
    /// stores can keep one `u64` ident plus the raw ASID per line
    /// and round-trip losslessly.
    #[inline]
    pub const fn from_ident(ident: u64, asid: Asid) -> Self {
        TaggedBlock {
            block: BlockAddr::new(ident ^ ((asid.raw() as u64) << ASID_IDENT_SHIFT)),
            asid,
        }
    }
}

impl From<BlockAddr> for TaggedBlock {
    #[inline]
    fn from(block: BlockAddr) -> Self {
        TaggedBlock::untagged(block)
    }
}

impl BlockAddr {
    /// Tags this block with an address space.
    #[inline]
    pub const fn with_asid(self, asid: Asid) -> TaggedBlock {
        TaggedBlock::new(self, asid)
    }
}

impl fmt::Debug for TaggedBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.asid.is_host() {
            write!(f, "TaggedBlock({:#x})", self.block.raw())
        } else {
            write!(f, "TaggedBlock({:#x}@{})", self.block.raw(), self.asid)
        }
    }
}

impl fmt::Display for TaggedBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.asid.is_host() {
            write!(f, "{:#x}", self.block.raw())
        } else {
            write!(f, "{:#x}@{}", self.block.raw(), self.asid)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_identity_is_bare_block_address() {
        for raw in [0u64, 1, 0xbeef, (1 << 47) - 1] {
            let b = BlockAddr::new(raw);
            let t = TaggedBlock::untagged(b);
            assert_eq!(t.ident(), raw);
            assert_eq!(t.set_index(64), b.set_index(64));
            assert_eq!(t.tag(64), b.tag(64));
            assert_eq!(t.hash(), mix64(raw));
            assert_eq!(t.oracle_key(), b);
        }
    }

    #[test]
    fn asid_separates_identical_virtual_addresses() {
        let b = BlockAddr::new(0x1234);
        let a = b.with_asid(Asid::new(1));
        let c = b.with_asid(Asid::new(2));
        assert_ne!(a, c);
        assert_ne!(a.ident(), c.ident());
        assert_ne!(a.tag(64), c.tag(64));
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn asid_stays_out_of_realistic_index_bits() {
        // With the ASID at bit 48, set indices up to 2^20 sets see
        // only block-address bits.
        let b = BlockAddr::new(0x5555);
        for sets in [16usize, 64, 2048, 1 << 20] {
            assert_eq!(
                b.with_asid(Asid::new(7)).set_index(sets),
                TaggedBlock::untagged(b).set_index(sets)
            );
        }
    }

    #[test]
    fn tag_and_index_recombine_to_ident() {
        let t = BlockAddr::new(0b1011_0110).with_asid(Asid::new(5));
        let sets = 16usize;
        assert_eq!(
            (t.tag(sets) << sets.trailing_zeros()) | t.set_index(sets) as u64,
            t.ident()
        );
    }

    #[test]
    fn from_block_addr_is_host() {
        let t: TaggedBlock = BlockAddr::new(9).into();
        assert!(t.asid.is_host());
        assert_eq!(t.block, BlockAddr::new(9));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            format!("{}", TaggedBlock::untagged(BlockAddr::new(0x40))),
            "0x40"
        );
        assert_eq!(
            format!("{}", BlockAddr::new(0x40).with_asid(Asid::new(3))),
            "0x40@3"
        );
        assert_eq!(format!("{}", Asid::new(12)), "12");
    }
}

//! Recency (LRU) tracking for set-associative structures.
//!
//! [`LruStamps`] tracks recency with monotone timestamps — the approach
//! used by the i-cache sets, the i-Filter, and the CSHR sets. It also
//! exposes a *recency ordering* so tests and analyses can recover the
//! full LRU stack.

/// Recency stamps for `n` ways of one set (or one fully-associative
/// structure).
///
/// # Examples
///
/// ```
/// use acic_types::LruStamps;
///
/// let mut lru = LruStamps::new(4);
/// lru.touch(0);
/// lru.touch(2);
/// lru.touch(1);
/// assert_eq!(lru.lru_way(), 3); // never touched
/// lru.touch(3);
/// assert_eq!(lru.lru_way(), 0); // oldest touch
/// assert_eq!(lru.mru_way(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LruStamps {
    stamps: Vec<u64>,
    clock: u64,
}

impl LruStamps {
    /// Creates stamps for `n` ways, all initially "never touched".
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "need at least one way");
        LruStamps {
            stamps: vec![0; n],
            clock: 0,
        }
    }

    /// Number of ways tracked.
    pub fn ways(&self) -> usize {
        self.stamps.len()
    }

    /// Builds a view from raw per-way stamps (used by flat-array LRU
    /// policies to materialize one set for inspection).
    ///
    /// # Panics
    ///
    /// Panics if `stamps` is empty.
    pub fn from_stamps(stamps: &[u64]) -> Self {
        assert!(!stamps.is_empty(), "need at least one way");
        LruStamps {
            clock: stamps.iter().copied().max().unwrap_or(0),
            stamps: stamps.to_vec(),
        }
    }

    /// Marks `way` as most recently used.
    ///
    /// # Panics
    ///
    /// Panics if `way` is out of bounds.
    #[inline]
    pub fn touch(&mut self, way: usize) {
        self.clock += 1;
        self.stamps[way] = self.clock;
    }

    /// Returns the least recently used way (lowest stamp; ties broken
    /// by lowest way index, so untouched ways are preferred in order).
    #[inline]
    pub fn lru_way(&self) -> usize {
        self.stamps
            .iter()
            .enumerate()
            .min_by_key(|&(i, &s)| (s, i))
            .map(|(i, _)| i)
            .expect("at least one way")
    }

    /// Returns the most recently used way (ties broken by highest
    /// way index, the mirror of [`LruStamps::lru_way`]).
    #[inline]
    pub fn mru_way(&self) -> usize {
        self.stamps
            .iter()
            .enumerate()
            .max_by_key(|&(i, &s)| (s, i))
            .map(|(i, _)| i)
            .expect("at least one way")
    }

    /// Stamp of a way (0 means never touched).
    #[inline]
    pub fn stamp(&self, way: usize) -> u64 {
        self.stamps[way]
    }

    /// Resets a way to "never touched" (used on invalidation).
    #[inline]
    pub fn clear(&mut self, way: usize) {
        self.stamps[way] = 0;
    }

    /// Ways ordered from MRU to LRU; the final element always equals
    /// [`LruStamps::lru_way`] (ties broken by descending way index).
    pub fn recency_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.stamps.len()).collect();
        order.sort_by_key(|&i| (u64::MAX - self.stamps[i], usize::MAX - i));
        order
    }

    /// The LRU *stack position* of `way`: 0 = MRU.
    pub fn stack_position(&self, way: usize) -> usize {
        self.recency_order()
            .iter()
            .position(|&w| w == way)
            .expect("way in order")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_ways_are_lru_in_index_order() {
        let mut lru = LruStamps::new(3);
        lru.touch(1);
        assert_eq!(lru.lru_way(), 0);
        lru.touch(0);
        assert_eq!(lru.lru_way(), 2);
    }

    #[test]
    fn recency_order_is_permutation() {
        let mut lru = LruStamps::new(4);
        for w in [2, 0, 3, 1, 2] {
            lru.touch(w);
        }
        let order = lru.recency_order();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
        assert_eq!(order[0], 2); // most recent
        assert_eq!(*order.last().unwrap(), lru.lru_way());
    }

    #[test]
    fn stack_positions_are_consistent() {
        let mut lru = LruStamps::new(4);
        for w in [0, 1, 2, 3] {
            lru.touch(w);
        }
        assert_eq!(lru.stack_position(3), 0);
        assert_eq!(lru.stack_position(0), 3);
    }

    #[test]
    fn clear_makes_way_lru() {
        let mut lru = LruStamps::new(2);
        lru.touch(0);
        lru.touch(1);
        lru.clear(1);
        assert_eq!(lru.lru_way(), 1);
    }

    #[test]
    fn sixteen_entry_filter_order() {
        // The paper's i-Filter is 16-entry fully associative with LRU.
        let mut lru = LruStamps::new(16);
        for w in 0..16 {
            lru.touch(w);
        }
        assert_eq!(lru.lru_way(), 0);
        lru.touch(0);
        assert_eq!(lru.lru_way(), 1);
    }
}

//! Minimal, offline stand-in for the `rand` crate.
//!
//! Implements exactly the surface the workspace uses: `rngs::StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], plus [`Rng::gen_range`]
//! over integer and float ranges and [`Rng::gen_bool`]. The generator
//! is a SplitMix64 stream — deterministic per seed, which is the only
//! property the synthetic workload generator relies on.

use core::ops::{Range, RangeInclusive};

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value surface used by the workspace.
pub trait Rng {
    /// Next raw 64-bit value of the stream.
    fn next_u64(&mut self) -> u64;

    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(&mut || self.next_u64())
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value using `next` as the entropy source.
    fn sample_single(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (next() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (next() as u128 * span) >> 64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = (next() >> 11) as $t / (1u64 << 53) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator (SplitMix64 stream).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = self.state;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(3..17u64);
            assert!((3..17).contains(&x));
            let y: i32 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = r.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
            let z: usize = r.gen_range(0..4usize);
            assert!(z < 4);
        }
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..=2800).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let v: usize = r.gen_range(0..=2usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}

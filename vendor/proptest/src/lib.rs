//! Minimal, offline stand-in for the `proptest` property-testing
//! crate.
//!
//! Supports the surface the workspace's property tests use: the
//! [`proptest!`] macro (with `ident in strategy` argument syntax),
//! [`prelude::any`], integer-range and tuple strategies,
//! [`collection::vec`], and the `prop_assert*` macros. Each property
//! runs [`CASES`] deterministic seeded random cases; on failure the
//! panic message includes the case number so the failure reproduces
//! exactly (the generator is seeded from the property body's order of
//! draws, not wall-clock time).

use core::ops::{Range, RangeInclusive};

/// Number of random cases each property runs.
pub const CASES: u32 = 64;

/// Deterministic entropy source for strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors proptest's
    /// `Strategy::prop_map`).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value (mirrors
/// proptest's `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Equal-weight union of strategies over one value type; built by
/// [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Creates an empty union (generation panics until an option is
    /// added).
    pub fn new() -> Self {
        Union {
            options: Vec::new(),
        }
    }

    /// Adds one alternative.
    pub fn or(mut self, s: impl Strategy<Value = T> + 'static) -> Self {
        self.options.push(Box::new(s));
        self
    }
}

impl<T> Default for Union<T> {
    fn default() -> Self {
        Union::new()
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "empty prop_oneof!");
        let idx = (rng.next_u64() as usize) % self.options.len();
        self.options[idx].generate(rng)
    }
}

/// Equal-weight choice between strategies yielding the same type
/// (mirrors proptest's `prop_oneof!`, without weight syntax).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new()$(.or($s))+
    };
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Marker strategy produced by [`prelude::any`]; generates uniform
/// values over the whole domain of `T`.
#[derive(Clone, Copy, Debug)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T> Default for Any<T> {
    fn default() -> Self {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

macro_rules! impl_any {
    ($($t:ty => |$rng:ident| $e:expr),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, $rng: &mut TestRng) -> $t {
                $e
            }
        }
    )*};
}

impl_any! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy for vectors with length drawn from `size` and
    /// elements drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{collection, Any, Just, Map, Strategy, TestRng, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Strategy generating arbitrary values of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy<Value = T>,
    {
        Any::default()
    }
}

/// Declares property tests. Each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` running [`CASES`] seeded random cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    // Per-case seed folds in the property name so
                    // sibling properties see distinct streams.
                    let seed = stringify!($name)
                        .bytes()
                        .fold(case as u64 + 1, |h, b| {
                            h.wrapping_mul(31).wrapping_add(b as u64)
                        });
                    let mut rng = $crate::TestRng::new(seed);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let run = || -> Result<(), String> {
                        $body
                        Ok(())
                    };
                    if let Err(message) = run() {
                        panic!(
                            "property {} failed at case {case}: {message}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: {} == {} ({l:?} vs {r:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "{} ({l:?} vs {r:?})",
                format!($($fmt)+)
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: {} != {} (both {l:?})",
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 1u32..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vectors_respect_size(v in collection::vec(any::<bool>(), 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn tuples_compose(t in (0u16..8, any::<bool>(), 0usize..3)) {
            let (a, _b, c) = t;
            prop_assert!(a < 8);
            prop_assert!(c < 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::new(5);
        let mut b = TestRng::new(5);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

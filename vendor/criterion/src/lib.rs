//! Minimal, offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the surface the workspace's benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `throughput` / `finish`, and a wall-clock
//! [`Bencher`]. Each benchmark auto-calibrates an iteration count to a
//! ~300 ms sample, takes `sample_size` samples, and prints the median
//! time per iteration plus derived throughput.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration (printed as elem/s).
    Elements(u64),
    /// Bytes processed per iteration (printed as B/s).
    Bytes(u64),
}

/// Times closures under [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs the routine `iters` times and records the total elapsed
    /// wall-clock time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(f: &mut dyn FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn format_time(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn format_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn bench_impl(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Quick mode (`ACIC_BENCH_QUICK=1`): a smoke pass that exercises
    // every benchmark body with drastically smaller samples — CI uses
    // it to keep bench code from rotting without paying measurement-
    // grade wall time. Numbers printed in quick mode are noisy.
    let quick = std::env::var_os("ACIC_BENCH_QUICK").is_some();
    let (calib_ms, sample_ns, sample_size) = if quick {
        (2, 1e7, sample_size.min(3))
    } else {
        (50, 3e8, sample_size)
    };
    // Calibrate: grow the iteration count until one sample takes at
    // least the calibration floor, then size samples to the budget.
    let mut iters = 1u64;
    let per_iter_ns = loop {
        let t = run_one(f, iters);
        if t >= Duration::from_millis(calib_ms) || iters >= 1 << 24 {
            break (t.as_nanos() as f64 / iters as f64).max(0.1);
        }
        iters = iters.saturating_mul(4);
    };
    let sample_iters = ((sample_ns / per_iter_ns) as u64).clamp(1, 1 << 24);
    let mut samples: Vec<f64> = (0..sample_size.max(1))
        .map(|_| run_one(f, sample_iters).as_nanos() as f64 / sample_iters as f64)
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let best = samples[0];
    let worst = samples[samples.len() - 1];

    let mut line = format!(
        "{name:<40} time: [{} {} {}]",
        format_time(best),
        format_time(median),
        format_time(worst)
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_sec = count as f64 * 1e9 / median;
        line.push_str(&format!(" thrpt: [{}]", format_rate(per_sec, unit)));
    }
    println!("{line}");
}

/// Benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Benchmarks a single routine under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        bench_impl(name, 10, None, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks one routine within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        bench_impl(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_elapsed() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(n, 10);
    }

    #[test]
    fn formatting_scales() {
        assert!(format_time(2.5e9).ends_with(" s"));
        assert!(format_time(1500.0).contains("µs"));
        assert!(format_rate(2e6, "elem").contains("Melem/s"));
    }
}
